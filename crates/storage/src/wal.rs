//! Write-ahead logging and checkpointing.
//!
//! Crescando "keeps all data in main memory, but it also supports full
//! recovery by checkpointing and logging all data to disk" (Section 4.4).
//! SharedDB group-commits one log record batch per heartbeat, which keeps the
//! logging cost per query constant regardless of batch size.
//!
//! The log is *logical*: it records the applied [`UpdateOp`]s per table in
//! commit order. Recovery replays the log on top of the latest checkpoint.
//! Records are encoded in a simple, self-describing line format so that the
//! file sink needs no third-party serialisation crates.

use crate::update::UpdateOp;
use parking_lot::Mutex;
use shareddb_common::ids::Timestamp;
use shareddb_common::{Error, Expr, Result, Tuple, Value};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Start of a committed batch with its commit timestamp.
    BeginBatch(Timestamp),
    /// One applied operation. Only operations that can be re-applied
    /// deterministically are logged: inserts log the full row, updates and
    /// deletes log their (bound) predicates and assignments.
    Apply {
        /// Target table name.
        table: String,
        /// The operation.
        op: UpdateOp,
    },
    /// End of a committed batch.
    CommitBatch(Timestamp),
}

/// Destination of log records. Implementations must persist records in order.
pub trait WalSink: Send {
    /// Appends one record.
    fn append(&mut self, record: &LogRecord) -> Result<()>;
    /// Makes all appended records durable.
    fn flush(&mut self) -> Result<()>;
}

/// A sink that keeps records in memory. Used by tests and by benchmark
/// configurations where logging is functionally enabled but not a measured
/// bottleneck (both baselines in the paper were CPU-bound).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<LogRecord>,
    flushes: usize,
}

impl MemorySink {
    /// Creates an empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records appended so far.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of flush calls (used to test group commit).
    pub fn flush_count(&self) -> usize {
        self.flushes
    }
}

impl WalSink for MemorySink {
    fn append(&mut self, record: &LogRecord) -> Result<()> {
        self.records.push(record.clone());
        Ok(())
    }
    fn flush(&mut self) -> Result<()> {
        self.flushes += 1;
        Ok(())
    }
}

/// A sink that writes the textual encoding of records to a file.
pub struct FileSink {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (or appends to) a log file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileSink {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads all records back from a log file (used by recovery).
    pub fn read_all(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        let file = File::open(path.as_ref())?;
        let reader = BufReader::new(file);
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            out.push(decode_record(&line)?);
        }
        Ok(out)
    }
}

impl WalSink for FileSink {
    fn append(&mut self, record: &LogRecord) -> Result<()> {
        let line = encode_record(record);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }
    fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

/// The write-ahead log: wraps a sink and provides batch-granular appends
/// (group commit per heartbeat).
pub struct Wal {
    sink: Mutex<Box<dyn WalSink>>,
}

impl Wal {
    /// Creates a WAL over the given sink.
    pub fn new(sink: Box<dyn WalSink>) -> Self {
        Wal {
            sink: Mutex::new(sink),
        }
    }

    /// A WAL that discards nothing but keeps everything in memory.
    pub fn in_memory() -> Self {
        Wal::new(Box::new(MemorySink::new()))
    }

    /// Logs one committed batch: begin marker, all operations, commit marker,
    /// followed by a single flush (group commit).
    pub fn log_batch(&self, ts: Timestamp, ops: &[(String, UpdateOp)]) -> Result<()> {
        let mut sink = self.sink.lock();
        sink.append(&LogRecord::BeginBatch(ts))?;
        for (table, op) in ops {
            sink.append(&LogRecord::Apply {
                table: table.clone(),
                op: op.clone(),
            })?;
        }
        sink.append(&LogRecord::CommitBatch(ts))?;
        sink.flush()
    }

    /// Runs a closure against the underlying sink (test hook).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut dyn WalSink) -> R) -> R {
        let mut sink = self.sink.lock();
        f(sink.as_mut())
    }
}

/// Extracts the committed operations of a record stream, dropping batches
/// without a commit marker (torn writes at the tail of the log).
pub fn committed_ops(records: &[LogRecord]) -> Vec<(Timestamp, Vec<(String, UpdateOp)>)> {
    let mut out = Vec::new();
    let mut current: Option<(Timestamp, Vec<(String, UpdateOp)>)> = None;
    for record in records {
        match record {
            LogRecord::BeginBatch(ts) => current = Some((*ts, Vec::new())),
            LogRecord::Apply { table, op } => {
                if let Some((_, ops)) = current.as_mut() {
                    ops.push((table.clone(), op.clone()));
                }
            }
            LogRecord::CommitBatch(ts) => {
                if let Some((begin_ts, ops)) = current.take() {
                    if begin_ts == *ts {
                        out.push((begin_ts, ops));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Textual encoding
// ---------------------------------------------------------------------------

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('N'),
        Value::Int(i) => {
            let _ = write!(out, "I{i}");
        }
        Value::Float(f) => {
            let _ = write!(out, "F{}", f.to_bits());
        }
        Value::Bool(b) => {
            let _ = write!(out, "B{}", if *b { 1 } else { 0 });
        }
        Value::Date(d) => {
            let _ = write!(out, "D{d}");
        }
        Value::Text(s) => {
            // Length-prefixed to avoid any escaping concerns.
            let _ = write!(out, "T{}:{s}", s.len());
        }
    }
}

fn decode_value(s: &str) -> Result<(Value, &str)> {
    let bad = || Error::Recovery(format!("malformed value encoding: {s}"));
    let mut chars = s.char_indices();
    let (_, tag) = chars.next().ok_or_else(bad)?;
    let rest = &s[1..];
    match tag {
        'N' => Ok((Value::Null, rest)),
        'I' | 'D' | 'B' | 'F' => {
            let end = rest.find([',', ')']).unwrap_or(rest.len());
            let (num, remainder) = rest.split_at(end);
            let v = match tag {
                'I' => Value::Int(num.parse().map_err(|_| bad())?),
                'D' => Value::Date(num.parse().map_err(|_| bad())?),
                'B' => Value::Bool(num == "1"),
                'F' => Value::Float(f64::from_bits(num.parse().map_err(|_| bad())?)),
                _ => unreachable!(),
            };
            Ok((v, remainder))
        }
        'T' => {
            let colon = rest.find(':').ok_or_else(bad)?;
            let len: usize = rest[..colon].parse().map_err(|_| bad())?;
            let start = colon + 1;
            if rest.len() < start + len {
                return Err(bad());
            }
            let text = rest[start..start + len].to_string();
            Ok((Value::Text(text), &rest[start + len..]))
        }
        _ => Err(bad()),
    }
}

fn encode_tuple(t: &Tuple, out: &mut String) {
    out.push('(');
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(v, out);
    }
    out.push(')');
}

fn decode_tuple(s: &str) -> Result<(Tuple, &str)> {
    let bad = || Error::Recovery(format!("malformed tuple encoding: {s}"));
    let mut rest = s.strip_prefix('(').ok_or_else(bad)?;
    let mut values = Vec::new();
    loop {
        if let Some(r) = rest.strip_prefix(')') {
            return Ok((Tuple::new(values), r));
        }
        if !values.is_empty() {
            rest = rest.strip_prefix(',').ok_or_else(bad)?;
        }
        let (v, r) = decode_value(rest)?;
        values.push(v);
        rest = r;
    }
}

fn encode_record(record: &LogRecord) -> String {
    let mut out = String::new();
    match record {
        LogRecord::BeginBatch(ts) => {
            let _ = write!(out, "BEGIN {}", ts.0);
        }
        LogRecord::CommitBatch(ts) => {
            let _ = write!(out, "COMMIT {}", ts.0);
        }
        LogRecord::Apply { table, op } => match op {
            UpdateOp::Insert { values } => {
                let _ = write!(out, "INSERT {table} ");
                encode_tuple(values, &mut out);
            }
            UpdateOp::Update {
                assignments,
                predicate,
            } => {
                // Only literal assignments can be encoded textually; richer
                // expressions are encoded via their Display form and
                // re-parsed by the SQL front end during recovery if needed.
                let _ = write!(out, "UPDATE {table} {} |", assignments.len());
                for (col, expr) in assignments {
                    let _ = write!(out, " {col}:=");
                    match expr {
                        Expr::Literal(v) => encode_value(v, &mut out),
                        other => {
                            let _ = write!(out, "E{}", other);
                        }
                    }
                    out.push(';');
                }
                let _ = write!(out, " WHERE {predicate}");
            }
            UpdateOp::Delete { predicate } => {
                let _ = write!(out, "DELETE {table} WHERE {predicate}");
            }
        },
    }
    out
}

fn decode_record(line: &str) -> Result<LogRecord> {
    let bad = || Error::Recovery(format!("malformed log record: {line}"));
    if let Some(ts) = line.strip_prefix("BEGIN ") {
        return Ok(LogRecord::BeginBatch(Timestamp(
            ts.trim().parse().map_err(|_| bad())?,
        )));
    }
    if let Some(ts) = line.strip_prefix("COMMIT ") {
        return Ok(LogRecord::CommitBatch(Timestamp(
            ts.trim().parse().map_err(|_| bad())?,
        )));
    }
    if let Some(rest) = line.strip_prefix("INSERT ") {
        let (table, tuple_text) = rest.split_once(' ').ok_or_else(bad)?;
        let (values, _) = decode_tuple(tuple_text)?;
        return Ok(LogRecord::Apply {
            table: table.to_string(),
            op: UpdateOp::Insert { values },
        });
    }
    // UPDATE / DELETE records are logged for completeness; full recovery of
    // predicate-based updates re-parses the rendered predicate which is only
    // supported for insert-only workload checkpoints in this build. Recovery
    // therefore treats them as opaque (checkpoints make them unnecessary).
    if line.starts_with("UPDATE ") || line.starts_with("DELETE ") {
        return Err(Error::Recovery(
            "predicate-based log records require a checkpoint to recover".into(),
        ));
    }
    Err(bad())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;

    #[test]
    fn memory_sink_group_commit() {
        let wal = Wal::in_memory();
        wal.log_batch(
            Timestamp(3),
            &[
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![1i64, "x"],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![2i64, "y"],
                    },
                ),
            ],
        )
        .unwrap();
        wal.with_sink(|sink| {
            // Downcast through the test-only accessor pattern: re-append and
            // count via flushes instead (the sink trait is object safe).
            sink.flush().unwrap();
        });
    }

    #[test]
    fn value_encoding_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Bool(true),
            Value::Date(15000),
            Value::text("hello, world"),
            Value::text("with)paren,and:colon"),
            Value::text(""),
        ] {
            let mut s = String::new();
            encode_value(&v, &mut s);
            let (decoded, rest) = decode_value(&s).unwrap();
            assert!(rest.is_empty());
            // NaN != NaN under PartialEq for floats, compare via total order.
            assert_eq!(decoded.cmp(&v), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn tuple_encoding_roundtrip() {
        let t = tuple![1i64, "a,b)c", 2.5f64, Value::Null];
        let mut s = String::new();
        encode_tuple(&t, &mut s);
        let (decoded, rest) = decode_tuple(&s).unwrap();
        assert!(rest.is_empty());
        assert_eq!(decoded, t);
    }

    #[test]
    fn record_roundtrip_inserts() {
        let rec = LogRecord::Apply {
            table: "ORDERS".into(),
            op: UpdateOp::Insert {
                values: tuple![7i64, "2011-01-01", 99.5f64],
            },
        };
        let encoded = encode_record(&rec);
        let decoded = decode_record(&encoded).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(
            decode_record("BEGIN 17").unwrap(),
            LogRecord::BeginBatch(Timestamp(17))
        );
        assert_eq!(
            decode_record("COMMIT 17").unwrap(),
            LogRecord::CommitBatch(Timestamp(17))
        );
        assert!(decode_record("GARBAGE").is_err());
    }

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shareddb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.append(&LogRecord::BeginBatch(Timestamp(1))).unwrap();
            sink.append(&LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![5i64, "row"],
                },
            })
            .unwrap();
            sink.append(&LogRecord::CommitBatch(Timestamp(1))).unwrap();
            sink.flush().unwrap();
        }
        let records = FileSink::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], LogRecord::BeginBatch(Timestamp(1)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn committed_ops_drops_torn_tail() {
        let records = vec![
            LogRecord::BeginBatch(Timestamp(1)),
            LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![1i64],
                },
            },
            LogRecord::CommitBatch(Timestamp(1)),
            LogRecord::BeginBatch(Timestamp(2)),
            LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![2i64],
                },
            },
            // no commit for batch 2 (crash)
        ];
        let committed = committed_ops(&records);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, Timestamp(1));
        assert_eq!(committed[0].1.len(), 1);
    }
}

//! # shareddb-storage
//!
//! The storage substrate of SharedDB, modelled on the **Crescando** storage
//! manager the paper builds on (Section 4.4):
//!
//! * Main-memory, multi-versioned tables with snapshot-consistent reads
//!   ([`table`], [`mvcc`]).
//! * **ClockScan** shared table scans ([`clockscan`]): queries *and* updates
//!   are batched and executed within a single pass over the data; query
//!   predicates are indexed (a query-data join) instead of the data.
//! * B-tree indexes and **shared index probes** ([`btree`], [`index_probe`]):
//!   look-ups of a whole batch of queries are executed in one cycle, with
//!   updates applied in arrival order, so that all selects of the cycle read a
//!   consistent snapshot.
//! * A write-ahead log and checkpointing for durability ([`wal`]).
//! * A catalog of tables and indexes ([`catalog`]).
//!
//! The scan and probe operators produce tuples in the *data-query model*
//! (tuples annotated with the set of interested queries) which is the format
//! consumed by the shared operators in `shareddb-core`.

pub mod btree;
pub mod catalog;
pub mod clockscan;
pub mod index_probe;
pub mod mvcc;
pub mod predicate_index;
pub mod table;
pub mod update;
pub mod wal;

pub use btree::BTreeIndex;
pub use catalog::{
    Catalog, CheckpointInfo, IndexDef, RecoveryReport, TableDef, CHECKPOINT_FILE, WAL_FILE,
};
pub use clockscan::{ClockScan, ScanQuery, SegmentView};
pub use index_probe::{IndexProbe, ProbeQuery, ProbeRange};
pub use mvcc::{Snapshot, TimestampOracle};
pub use table::{RowId, StoredRow, Table};
pub use update::{UpdateOp, UpdateResult};
pub use wal::{
    scan_frames, FaultConfig, FaultSink, FileSink, LogRecord, MemorySink, SyncPolicy, TornTail,
    Wal, WalConfig, WalScan, WalSink, WalStatsSnapshot, FRAME_HEADER_LEN, FRAME_MAGIC,
    WAL_FORMAT_VERSION,
};

//! The table catalog: table and index definitions, bulk loading, durability.
//!
//! The catalog is the shared entry point of the storage layer: the SharedDB
//! engine, the query-at-a-time baselines and the benchmark drivers all operate
//! on the same [`Catalog`] so that performance comparisons run against the
//! identical data structures.

use crate::clockscan::apply_update;
use crate::mvcc::TimestampOracle;
use crate::table::Table;
use crate::update::UpdateOp;
use crate::wal::{committed_ops, FileSink, LogRecord, Wal};
use parking_lot::RwLock;
use shareddb_common::ids::Timestamp;
use shareddb_common::{Column, DataType, Error, Result, Schema, Tuple};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Definition of a table to create.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name (upper-cased on creation).
    pub name: String,
    /// Columns.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
}

impl TableDef {
    /// Starts a builder-style definition.
    pub fn new(name: impl Into<String>) -> Self {
        TableDef {
            name: name.into().to_ascii_uppercase(),
            columns: Vec::new(),
            primary_key: Vec::new(),
        }
    }

    /// Adds a non-nullable column.
    pub fn column(mut self, name: &str, data_type: DataType) -> Self {
        self.columns
            .push(Column::new(name, data_type).with_qualifier(self.name.clone()));
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: &str, data_type: DataType) -> Self {
        self.columns
            .push(Column::nullable(name, data_type).with_qualifier(self.name.clone()));
        self
    }

    /// Declares the primary key.
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        self.primary_key = columns.iter().map(|c| c.to_ascii_uppercase()).collect();
        self
    }
}

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Table the index belongs to.
    pub table: String,
    /// Indexed column name.
    pub column: String,
}

/// The catalog of all tables, plus the shared timestamp oracle and WAL.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    oracle: Arc<TimestampOracle>,
    wal: Arc<Wal>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Creates an empty catalog with an in-memory WAL.
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            oracle: Arc::new(TimestampOracle::new()),
            wal: Arc::new(Wal::in_memory()),
        }
    }

    /// Creates a catalog that logs to the given WAL.
    pub fn with_wal(wal: Wal) -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            oracle: Arc::new(TimestampOracle::new()),
            wal: Arc::new(wal),
        }
    }

    /// The shared timestamp oracle.
    pub fn oracle(&self) -> Arc<TimestampOracle> {
        Arc::clone(&self.oracle)
    }

    /// Captures the current read snapshot (the latest committed state).
    ///
    /// The handle can be carried across threads and engines that share this
    /// catalog: every scan or probe executed with the pinned snapshot reads
    /// exactly the version set that was committed when the snapshot was
    /// taken. The cluster layer uses this to give a fanned-out query one
    /// consistent view across all of its partitions (see
    /// `SubmitOptions::pinned_snapshot` in `shareddb-core`).
    pub fn snapshot(&self) -> crate::mvcc::Snapshot {
        self.oracle.read_ts()
    }

    /// The write-ahead log.
    pub fn wal(&self) -> Arc<Wal> {
        Arc::clone(&self.wal)
    }

    /// Creates a table.
    pub fn create_table(&self, def: TableDef) -> Result<Arc<RwLock<Table>>> {
        let name = def.name.to_ascii_uppercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::ConstraintViolation(format!(
                "table {name} already exists"
            )));
        }
        let schema = Schema::new(def.columns.clone());
        let mut pk = Vec::new();
        for key_col in &def.primary_key {
            pk.push(schema.resolve(None, key_col).map_err(|_| {
                Error::UnknownColumn(format!("primary key column {key_col} of table {name}"))
            })?);
        }
        let table = Arc::new(RwLock::new(Table::new(name.clone(), schema, pk)));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Creates a secondary index.
    pub fn create_index(&self, def: IndexDef) -> Result<()> {
        let table = self.table(&def.table)?;
        let mut table = table.write();
        let column = table.schema().resolve(None, &def.column)?;
        table.create_index(def.name, column)
    }

    /// Returns a handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Bulk-loads rows into a table with timestamp 0 (visible to every
    /// snapshot); used by data generators. Bulk loads are not logged — they
    /// are covered by checkpoints.
    pub fn bulk_load(&self, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        let handle = self.table(table)?;
        let mut t = handle.write();
        let n = rows.len();
        for row in rows {
            t.insert(row, Timestamp(0))?;
        }
        Ok(n)
    }

    /// Applies a batch of update operations atomically (one commit timestamp
    /// for the whole batch) and logs it to the WAL.
    pub fn apply_batch(&self, ops: &[(String, UpdateOp)]) -> Result<Vec<crate::UpdateResult>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let commit_ts = self.oracle.next_commit_ts();
        let mut results = Vec::with_capacity(ops.len());
        for (table_name, op) in ops {
            let handle = self.table(table_name)?;
            let mut table = handle.write();
            results.push(apply_update(&mut table, op, commit_ts)?);
        }
        self.wal.log_batch(commit_ts, ops)?;
        self.oracle.publish(commit_ts);
        Ok(results)
    }

    /// Writes a checkpoint of all live rows to a file: one INSERT record per
    /// row, bracketed by a begin/commit pair carrying the checkpoint
    /// timestamp. A checkpoint plus the WAL tail suffices to recover.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<usize> {
        let snapshot = self.oracle.read_ts();
        let mut sink = FileSink::create(path)?;
        use crate::wal::WalSink as _;
        sink.append(&LogRecord::BeginBatch(snapshot.ts))?;
        let mut rows = 0usize;
        for name in self.table_names() {
            let handle = self.table(&name)?;
            let table = handle.read();
            for (_, row) in table.scan(snapshot) {
                sink.append(&LogRecord::Apply {
                    table: name.clone(),
                    op: UpdateOp::Insert {
                        values: row.clone(),
                    },
                })?;
                rows += 1;
            }
        }
        sink.append(&LogRecord::CommitBatch(snapshot.ts))?;
        sink.flush()?;
        Ok(rows)
    }

    /// Rebuilds table contents from a checkpoint file. Tables and indexes must
    /// already be (re-)created with the same definitions. Returns the number
    /// of restored rows.
    pub fn restore_checkpoint(&self, path: impl AsRef<Path>) -> Result<usize> {
        let records = FileSink::read_all(path)?;
        let batches = committed_ops(&records);
        let mut restored = 0usize;
        for (_, ops) in batches {
            for (table_name, op) in ops {
                if let UpdateOp::Insert { values } = op {
                    let handle = self.table(&table_name)?;
                    let mut table = handle.write();
                    table.insert(values, Timestamp(0))?;
                    restored += 1;
                } else {
                    return Err(Error::Recovery(
                        "checkpoint contains non-insert records".into(),
                    ));
                }
            }
        }
        Ok(restored)
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;
    use shareddb_common::Expr;

    fn item_def() -> TableDef {
        TableDef::new("ITEM")
            .column("I_ID", DataType::Int)
            .column("I_TITLE", DataType::Text)
            .column("I_COST", DataType::Float)
            .primary_key(&["I_ID"])
    }

    #[test]
    fn create_table_and_duplicate_rejected() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        assert!(catalog.create_table(item_def()).is_err());
        assert_eq!(catalog.table_names(), vec!["ITEM".to_string()]);
        assert!(catalog.table("item").is_ok());
        assert!(catalog.table("MISSING").is_err());
    }

    #[test]
    fn create_table_with_bad_pk_fails() {
        let catalog = Catalog::new();
        let def = TableDef::new("X")
            .column("A", DataType::Int)
            .primary_key(&["NOPE"]);
        assert!(catalog.create_table(def).is_err());
    }

    #[test]
    fn bulk_load_and_index() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..50i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "ITEM_COST".into(),
                table: "ITEM".into(),
                column: "I_COST".into(),
            })
            .unwrap();
        let table = catalog.table("ITEM").unwrap();
        let t = table.read();
        assert_eq!(t.live_count(), 50);
        assert!(t.has_index_on(2));
    }

    #[test]
    fn apply_batch_commits_atomically_and_logs() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        let before = catalog.oracle().read_ts();
        let results = catalog
            .apply_batch(&[
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![1i64, "a", 1.0f64],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![2i64, "b", 2.0f64],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Update {
                        assignments: vec![(2, Expr::lit(9.0f64))],
                        predicate: Expr::col(0).eq(Expr::lit(1i64)),
                    },
                ),
            ])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].rows_affected, 1);
        let table = catalog.table("ITEM").unwrap();
        // Nothing visible at the pre-batch snapshot; everything after.
        assert_eq!(table.read().scan(before).count(), 0);
        assert_eq!(table.read().scan(catalog.oracle().read_ts()).count(), 2);
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shareddb-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.log");
        let _ = std::fs::remove_file(&path);

        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..20i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        // Delete some rows so the checkpoint reflects the live state only.
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Delete {
                    predicate: Expr::col(0).lt(Expr::lit(5i64)),
                },
            )])
            .unwrap();
        let written = catalog.checkpoint(&path).unwrap();
        assert_eq!(written, 15);

        let recovered = Catalog::new();
        recovered.create_table(item_def()).unwrap();
        let restored = recovered.restore_checkpoint(&path).unwrap();
        assert_eq!(restored, 15);
        let table = recovered.table("ITEM").unwrap();
        assert_eq!(table.read().live_count(), 15);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_batch_is_noop() {
        let catalog = Catalog::new();
        assert!(catalog.apply_batch(&[]).unwrap().is_empty());
    }
}

//! The table catalog: table and index definitions, bulk loading, durability.
//!
//! The catalog is the shared entry point of the storage layer: the SharedDB
//! engine, the query-at-a-time baselines and the benchmark drivers all operate
//! on the same [`Catalog`] so that performance comparisons run against the
//! identical data structures.

use crate::clockscan::apply_update;
use crate::mvcc::TimestampOracle;
use crate::table::Table;
use crate::update::UpdateOp;
use crate::wal::{
    committed_ops, encode_frame, scan_frames, FileSink, LogRecord, TornTail, Wal, WalSink as _,
};
use parking_lot::RwLock;
use shareddb_common::ids::Timestamp;
use shareddb_common::{Column, DataType, Error, Result, Schema, Tuple};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the current checkpoint inside a data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.sdb";
/// Scratch name a checkpoint is written under before the atomic rename.
pub const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";

/// Definition of a table to create.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name (upper-cased on creation).
    pub name: String,
    /// Columns.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
}

impl TableDef {
    /// Starts a builder-style definition.
    pub fn new(name: impl Into<String>) -> Self {
        TableDef {
            name: name.into().to_ascii_uppercase(),
            columns: Vec::new(),
            primary_key: Vec::new(),
        }
    }

    /// Adds a non-nullable column.
    pub fn column(mut self, name: &str, data_type: DataType) -> Self {
        self.columns
            .push(Column::new(name, data_type).with_qualifier(self.name.clone()));
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: &str, data_type: DataType) -> Self {
        self.columns
            .push(Column::nullable(name, data_type).with_qualifier(self.name.clone()));
        self
    }

    /// Declares the primary key.
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        self.primary_key = columns.iter().map(|c| c.to_ascii_uppercase()).collect();
        self
    }
}

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Table the index belongs to.
    pub table: String,
    /// Indexed column name.
    pub column: String,
}

/// The catalog of all tables, plus the shared timestamp oracle and WAL.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    oracle: Arc<TimestampOracle>,
    wal: Arc<Wal>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Creates an empty catalog with an in-memory WAL.
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            oracle: Arc::new(TimestampOracle::new()),
            wal: Arc::new(Wal::in_memory()),
        }
    }

    /// Creates a catalog that logs to the given WAL.
    pub fn with_wal(wal: Wal) -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            oracle: Arc::new(TimestampOracle::new()),
            wal: Arc::new(wal),
        }
    }

    /// The shared timestamp oracle.
    pub fn oracle(&self) -> Arc<TimestampOracle> {
        Arc::clone(&self.oracle)
    }

    /// Captures the current read snapshot (the latest committed state).
    ///
    /// The handle can be carried across threads and engines that share this
    /// catalog: every scan or probe executed with the pinned snapshot reads
    /// exactly the version set that was committed when the snapshot was
    /// taken. The cluster layer uses this to give a fanned-out query one
    /// consistent view across all of its partitions (see
    /// `SubmitOptions::pinned_snapshot` in `shareddb-core`).
    pub fn snapshot(&self) -> crate::mvcc::Snapshot {
        self.oracle.read_ts()
    }

    /// The write-ahead log.
    pub fn wal(&self) -> Arc<Wal> {
        Arc::clone(&self.wal)
    }

    /// Creates a table.
    pub fn create_table(&self, def: TableDef) -> Result<Arc<RwLock<Table>>> {
        let name = def.name.to_ascii_uppercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::ConstraintViolation(format!(
                "table {name} already exists"
            )));
        }
        let schema = Schema::new(def.columns.clone());
        let mut pk = Vec::new();
        for key_col in &def.primary_key {
            pk.push(schema.resolve(None, key_col).map_err(|_| {
                Error::UnknownColumn(format!("primary key column {key_col} of table {name}"))
            })?);
        }
        let table = Arc::new(RwLock::new(Table::new(name.clone(), schema, pk)));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Creates a secondary index.
    pub fn create_index(&self, def: IndexDef) -> Result<()> {
        let table = self.table(&def.table)?;
        let mut table = table.write();
        let column = table.schema().resolve(None, &def.column)?;
        table.create_index(def.name, column)
    }

    /// Returns a handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Bulk-loads rows into a table with timestamp 0 (visible to every
    /// snapshot); used by data generators. Bulk loads are not logged — they
    /// are covered by checkpoints.
    pub fn bulk_load(&self, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        let handle = self.table(table)?;
        let mut t = handle.write();
        let n = rows.len();
        for row in rows {
            t.insert(row, Timestamp(0))?;
        }
        Ok(n)
    }

    /// Applies a batch of update operations atomically (one commit timestamp
    /// for the whole batch) and logs it to the WAL.
    pub fn apply_batch(&self, ops: &[(String, UpdateOp)]) -> Result<Vec<crate::UpdateResult>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let commit_ts = self.oracle.next_commit_ts();
        let mut results = Vec::with_capacity(ops.len());
        for (table_name, op) in ops {
            let handle = self.table(table_name)?;
            let mut table = handle.write();
            results.push(apply_update(&mut table, op, commit_ts)?);
        }
        self.wal.log_batch(commit_ts, ops)?;
        self.oracle.publish(commit_ts);
        Ok(results)
    }

    /// Writes a checkpoint of all live rows into `dir`: a CRC-framed snapshot
    /// file opening with a [`LogRecord::CheckpointMeta`] (the pinned MVCC
    /// snapshot timestamp and the WAL LSN current at checkpoint start),
    /// followed by one `INSERT` record per live row, bracketed by a
    /// begin/commit pair. The file is written to `checkpoint.tmp`, fsync'd,
    /// and atomically renamed to `checkpoint.sdb` — a crash mid-checkpoint
    /// leaves the previous checkpoint intact. A checkpoint plus the WAL tail
    /// (committed batches with `ts > checkpoint.ts`) suffices to recover.
    ///
    /// Safe under concurrent writers: rows are read at one pinned snapshot
    /// and the WAL is left untouched.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<CheckpointInfo> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot = self.oracle.read_ts();
        let wal_lsn = self.wal.next_lsn().saturating_sub(1);
        let tmp = dir.join(CHECKPOINT_TMP_FILE);
        let _ = std::fs::remove_file(&tmp); // FileSink appends; start clean
        let mut rows = 0usize;
        {
            let mut sink = FileSink::create(&tmp)?;
            let mut lsn = 0u64;
            let mut append = |sink: &mut FileSink, record: &LogRecord| -> Result<()> {
                lsn += 1;
                sink.append(&encode_frame(lsn, record))
            };
            append(
                &mut sink,
                &LogRecord::CheckpointMeta {
                    ts: snapshot.ts,
                    wal_lsn,
                },
            )?;
            append(&mut sink, &LogRecord::BeginBatch(snapshot.ts))?;
            for name in self.table_names() {
                let handle = self.table(&name)?;
                let table = handle.read();
                for (_, row) in table.scan(snapshot) {
                    append(
                        &mut sink,
                        &LogRecord::Apply {
                            table: name.clone(),
                            op: UpdateOp::Insert {
                                values: row.clone(),
                            },
                        },
                    )?;
                    rows += 1;
                }
            }
            append(&mut sink, &LogRecord::CommitBatch(snapshot.ts))?;
            sink.sync()?;
        }
        let path = dir.join(CHECKPOINT_FILE);
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir);
        Ok(CheckpointInfo {
            rows,
            ts: snapshot.ts,
            wal_lsn,
            path,
        })
    }

    /// Rebuilds table contents from a checkpoint file. Tables and indexes
    /// must already be (re-)created with the same definitions. Unlike the
    /// WAL, a checkpoint is written atomically, so corruption here is an
    /// error, never silently truncated. Rows restore at timestamp 0 (visible
    /// to every snapshot); the returned info carries the checkpoint's
    /// snapshot timestamp for WAL-tail filtering.
    pub fn restore_checkpoint(&self, path: impl AsRef<Path>) -> Result<CheckpointInfo> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let scan = scan_frames(&bytes);
        if let Some(torn) = scan.torn {
            return Err(Error::Recovery(format!(
                "corrupt checkpoint {} at byte {}: {}",
                path.display(),
                torn.offset,
                torn.reason
            )));
        }
        let records = scan.into_records();
        let (ts, wal_lsn) = match records.first() {
            Some(LogRecord::CheckpointMeta { ts, wal_lsn }) => (*ts, *wal_lsn),
            _ => {
                return Err(Error::Recovery(format!(
                    "checkpoint {} does not start with checkpoint metadata",
                    path.display()
                )))
            }
        };
        match records.last() {
            Some(LogRecord::CommitBatch(commit_ts)) if *commit_ts == ts => {}
            _ => {
                return Err(Error::Recovery(format!(
                    "checkpoint {} is missing its commit marker",
                    path.display()
                )))
            }
        }
        let mut restored = 0usize;
        for record in &records[1..] {
            match record {
                LogRecord::Apply {
                    table: table_name,
                    op: UpdateOp::Insert { values },
                } => {
                    let handle = self.table(table_name)?;
                    let mut table = handle.write();
                    table.insert(values.clone(), Timestamp(0))?;
                    restored += 1;
                }
                LogRecord::BeginBatch(_) | LogRecord::CommitBatch(_) => {}
                _ => {
                    return Err(Error::Recovery(
                        "checkpoint contains non-insert records".into(),
                    ));
                }
            }
        }
        Ok(CheckpointInfo {
            rows: restored,
            ts,
            wal_lsn,
            path: path.to_path_buf(),
        })
    }

    /// Recovers this catalog from a data directory and attaches durable
    /// logging to it: loads `checkpoint.sdb` (if present), replays the
    /// committed WAL tail (`wal.log`) — truncating the log at the first torn
    /// or corrupt record — restores the timestamp oracle, and installs a
    /// file sink so subsequent [`Catalog::apply_batch`] commits append to
    /// the recovered log. Tables and indexes must already be created with
    /// the same definitions (the schema is code, the data is disk).
    ///
    /// An empty or missing directory recovers to an empty state, so this is
    /// also how a fresh durable catalog is opened. Note that
    /// [`Catalog::bulk_load`] is *not* logged: seed data loaded after the
    /// last checkpoint is covered only once the next checkpoint runs (see
    /// [`Catalog::compact`]).
    pub fn recover(&self, dir: impl AsRef<Path>) -> Result<RecoveryReport> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let (checkpoint_rows, checkpoint_ts) = if ckpt_path.exists() {
            let info = self.restore_checkpoint(&ckpt_path)?;
            (info.rows, info.ts)
        } else {
            (0, Timestamp(0))
        };
        let wal_path = dir.join(WAL_FILE);
        let (records, next_lsn, torn_tail) = FileSink::recover(&wal_path)?;
        let records: Vec<LogRecord> = records.into_iter().map(|(_, r)| r).collect();
        let mut replayed_batches = 0usize;
        let mut replayed_ops = 0usize;
        let mut max_ts = checkpoint_ts;
        for (ts, ops) in committed_ops(&records) {
            if ts <= checkpoint_ts {
                continue; // already inside the checkpoint snapshot
            }
            for (table_name, op) in &ops {
                let handle = self.table(table_name)?;
                let mut table = handle.write();
                apply_update(&mut table, op, ts)?;
            }
            if ts > max_ts {
                max_ts = ts;
            }
            replayed_batches += 1;
            replayed_ops += ops.len();
        }
        self.oracle.restore(max_ts);
        self.wal
            .install_sink(Box::new(FileSink::create(&wal_path)?), next_lsn);
        Ok(RecoveryReport {
            checkpoint_rows,
            checkpoint_ts,
            replayed_batches,
            replayed_ops,
            torn_tail,
            next_lsn,
        })
    }

    /// Checkpoint + log truncation. **Quiescent callers only** (recovery,
    /// startup, shutdown): a batch that commits between the checkpoint's
    /// snapshot pin and the truncation would be lost. Where writers are
    /// live, use [`Catalog::checkpoint`] — replay filters batches the
    /// checkpoint already covers, so an untruncated log is always safe.
    pub fn compact(&self, dir: impl AsRef<Path>) -> Result<CheckpointInfo> {
        let info = self.checkpoint(&dir)?;
        let wal_path = dir.as_ref().join(WAL_FILE);
        std::fs::File::create(&wal_path)?.sync_data()?; // truncate to empty
        let next_lsn = self.wal.next_lsn(); // LSNs stay monotone across rotation
        self.wal
            .install_sink(Box::new(FileSink::create(&wal_path)?), next_lsn);
        sync_dir(dir.as_ref());
        Ok(info)
    }
}

/// Outcome of [`Catalog::checkpoint`] / [`Catalog::restore_checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Live rows written to / restored from the snapshot.
    pub rows: usize,
    /// The pinned snapshot timestamp the rows were read at.
    pub ts: Timestamp,
    /// WAL LSN current when the checkpoint started.
    pub wal_lsn: u64,
    /// Path of the checkpoint file.
    pub path: PathBuf,
}

/// Outcome of [`Catalog::recover`].
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Rows restored from the checkpoint (0 when none existed).
    pub checkpoint_rows: usize,
    /// Snapshot timestamp of the restored checkpoint.
    pub checkpoint_ts: Timestamp,
    /// Committed WAL batches replayed on top of the checkpoint.
    pub replayed_batches: usize,
    /// Operations inside those batches.
    pub replayed_ops: usize,
    /// `Some` when the WAL had a torn/corrupt tail that was truncated.
    pub torn_tail: Option<TornTail>,
    /// Next LSN the attached WAL will append with.
    pub next_lsn: u64,
}

/// Best-effort directory fsync so a rename survives power loss (Linux
/// requires fsyncing the parent directory to persist the new directory
/// entry; other platforms may not support opening directories).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;
    use shareddb_common::Expr;

    fn item_def() -> TableDef {
        TableDef::new("ITEM")
            .column("I_ID", DataType::Int)
            .column("I_TITLE", DataType::Text)
            .column("I_COST", DataType::Float)
            .primary_key(&["I_ID"])
    }

    #[test]
    fn create_table_and_duplicate_rejected() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        assert!(catalog.create_table(item_def()).is_err());
        assert_eq!(catalog.table_names(), vec!["ITEM".to_string()]);
        assert!(catalog.table("item").is_ok());
        assert!(catalog.table("MISSING").is_err());
    }

    #[test]
    fn create_table_with_bad_pk_fails() {
        let catalog = Catalog::new();
        let def = TableDef::new("X")
            .column("A", DataType::Int)
            .primary_key(&["NOPE"]);
        assert!(catalog.create_table(def).is_err());
    }

    #[test]
    fn bulk_load_and_index() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..50i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "ITEM_COST".into(),
                table: "ITEM".into(),
                column: "I_COST".into(),
            })
            .unwrap();
        let table = catalog.table("ITEM").unwrap();
        let t = table.read();
        assert_eq!(t.live_count(), 50);
        assert!(t.has_index_on(2));
    }

    #[test]
    fn apply_batch_commits_atomically_and_logs() {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        let before = catalog.oracle().read_ts();
        let results = catalog
            .apply_batch(&[
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![1i64, "a", 1.0f64],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![2i64, "b", 2.0f64],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Update {
                        assignments: vec![(2, Expr::lit(9.0f64))],
                        predicate: Expr::col(0).eq(Expr::lit(1i64)),
                    },
                ),
            ])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[2].rows_affected, 1);
        let table = catalog.table("ITEM").unwrap();
        // Nothing visible at the pre-batch snapshot; everything after.
        assert_eq!(table.read().scan(before).count(), 0);
        assert_eq!(table.read().scan(catalog.oracle().read_ts()).count(), 2);
    }

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shareddb-catalog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let dir = temp_data_dir("roundtrip");

        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..20i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        // Delete some rows so the checkpoint reflects the live state only.
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Delete {
                    predicate: Expr::col(0).lt(Expr::lit(5i64)),
                },
            )])
            .unwrap();
        let info = catalog.checkpoint(&dir).unwrap();
        assert_eq!(info.rows, 15);
        assert_eq!(info.path, dir.join(CHECKPOINT_FILE));
        assert!(!dir.join(CHECKPOINT_TMP_FILE).exists());

        let recovered = Catalog::new();
        recovered.create_table(item_def()).unwrap();
        let restored = recovered.restore_checkpoint(info.path).unwrap();
        assert_eq!(restored.rows, 15);
        assert_eq!(restored.ts, info.ts);
        let table = recovered.table("ITEM").unwrap();
        assert_eq!(table.read().live_count(), 15);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_replays_wal_tail_after_checkpoint() {
        let dir = temp_data_dir("replay");

        // First life: durable catalog, some committed batches, a checkpoint,
        // then more batches that only live in the WAL.
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog.recover(&dir).unwrap(); // attach file WAL to empty dir
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![1i64, "a", 1.0f64],
                },
            )])
            .unwrap();
        catalog.checkpoint(&dir).unwrap();
        catalog
            .apply_batch(&[
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![2i64, "b", 2.0f64],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Update {
                        assignments: vec![(2, Expr::lit(9.0f64))],
                        predicate: Expr::col(0).eq(Expr::lit(1i64)),
                    },
                ),
            ])
            .unwrap();
        let next_lsn = catalog.wal().next_lsn();

        // Second life: recover from disk.
        let reborn = Catalog::new();
        reborn.create_table(item_def()).unwrap();
        let report = reborn.recover(&dir).unwrap();
        assert_eq!(report.checkpoint_rows, 1);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(report.replayed_ops, 2);
        assert!(report.torn_tail.is_none());
        assert_eq!(report.next_lsn, next_lsn);
        let table = reborn.table("ITEM").unwrap();
        {
            let t = table.read();
            let snap = reborn.snapshot();
            let rows: Vec<_> = t.scan(snap).map(|(_, r)| r.clone()).collect();
            assert_eq!(rows.len(), 2);
        }
        // The update replayed: item 1's cost is 9.0.
        let snap = reborn.snapshot();
        let t = table.read();
        let cost: Vec<f64> = t
            .scan(snap)
            .filter(|(_, r)| r[0] == shareddb_common::Value::Int(1))
            .map(|(_, r)| match r[2] {
                shareddb_common::Value::Float(f) => f,
                _ => panic!("expected float"),
            })
            .collect();
        assert_eq!(cost, vec![9.0]);
        drop(t);

        // New commits after recovery order strictly after replayed ones and
        // keep appending to the same log.
        reborn
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![3i64, "c", 3.0f64],
                },
            )])
            .unwrap();
        assert!(reborn.wal().next_lsn() > next_lsn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_truncates_torn_wal_tail() {
        let dir = temp_data_dir("torn");

        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog.recover(&dir).unwrap();
        for i in 0..3i64 {
            catalog
                .apply_batch(&[(
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![i, format!("t{i}"), i as f64],
                    },
                )])
                .unwrap();
        }
        drop(catalog);

        // Tear the last record mid-frame.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let reborn = Catalog::new();
        reborn.create_table(item_def()).unwrap();
        let report = reborn.recover(&dir).unwrap();
        // The torn COMMIT frame drops the whole third batch (never a partial
        // batch), and the file is physically truncated back to valid frames.
        assert!(report.torn_tail.is_some());
        assert_eq!(report.replayed_batches, 2);
        let table = reborn.table("ITEM").unwrap();
        assert_eq!(table.read().live_count(), 2);
        assert!(std::fs::metadata(&wal_path).unwrap().len() < len - 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_truncates_wal_and_preserves_state() {
        let dir = temp_data_dir("compact");

        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog.recover(&dir).unwrap();
        // Bulk loads are unlogged; compact captures them in the checkpoint.
        catalog
            .bulk_load("ITEM", vec![tuple![1i64, "seed", 0.5f64]])
            .unwrap();
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![2i64, "live", 2.0f64],
                },
            )])
            .unwrap();
        let lsn_before = catalog.wal().next_lsn();
        let info = catalog.compact(&dir).unwrap();
        assert_eq!(info.rows, 2);
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        // LSNs stay monotone across the rotation.
        assert_eq!(catalog.wal().next_lsn(), lsn_before);

        let reborn = Catalog::new();
        reborn.create_table(item_def()).unwrap();
        let report = reborn.recover(&dir).unwrap();
        assert_eq!(report.checkpoint_rows, 2);
        assert_eq!(report.replayed_batches, 0);
        assert_eq!(reborn.table("ITEM").unwrap().read().live_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_checkpoint_rejects_corruption() {
        let dir = temp_data_dir("badckpt");

        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load("ITEM", vec![tuple![1i64, "x", 1.0f64]])
            .unwrap();
        let info = catalog.checkpoint(&dir).unwrap();

        // Flip one payload byte: checkpoints fail hard, never truncate.
        let mut bytes = std::fs::read(&info.path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&info.path, &bytes).unwrap();

        let reborn = Catalog::new();
        reborn.create_table(item_def()).unwrap();
        assert!(reborn.restore_checkpoint(&info.path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_is_noop() {
        let catalog = Catalog::new();
        assert!(catalog.apply_batch(&[]).unwrap().is_empty());
    }
}

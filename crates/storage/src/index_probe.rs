//! Shared index probes.
//!
//! For point and small-range accesses a full ClockScan cycle is wasteful, so
//! SharedDB extends Crescando with B-tree indexes and a *shared index probe*
//! operator (Section 4.4): "look-ups are enqueued in the pending query queue
//! which is emptied at the beginning of each cycle. During the cycle, the
//! updates are executed in the arrival order and multiple B-tree look-ups are
//! used to evaluate all the select queries. [...] Just as the (shared) full
//! table scan, the index probe operator guarantees that all select queries
//! will read a consistent snapshot."
//!
//! Executing many look-ups per cycle gives the instruction- and data-cache
//! locality benefits of batched information filters (Fischer & Kossmann,
//! ICDE 2005 — reference [12] of the paper).

use crate::clockscan::apply_update;
use crate::mvcc::TimestampOracle;
use crate::table::Table;
use crate::update::{UpdateOp, UpdateResult};
use parking_lot::{Mutex, RwLock};
use shareddb_common::{Expr, QTuple, QueryId, QuerySet, Result, Schema, Value};
use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::Arc;

/// The key range of one probe.
#[derive(Debug, Clone)]
pub enum ProbeRange {
    /// Exact-match probe (`col = key`).
    Key(Value),
    /// Range probe with inclusive/exclusive bounds.
    Range {
        /// Lower bound.
        low: Bound<Value>,
        /// Upper bound.
        high: Bound<Value>,
    },
}

impl ProbeRange {
    /// Probe for all keys greater than `v`.
    pub fn greater_than(v: Value) -> Self {
        ProbeRange::Range {
            low: Bound::Excluded(v),
            high: Bound::Unbounded,
        }
    }

    /// Probe for all keys less than `v`.
    pub fn less_than(v: Value) -> Self {
        ProbeRange::Range {
            low: Bound::Unbounded,
            high: Bound::Excluded(v),
        }
    }

    /// Probe for all keys in `[low, high]`.
    pub fn between(low: Value, high: Value) -> Self {
        ProbeRange::Range {
            low: Bound::Included(low),
            high: Bound::Included(high),
        }
    }
}

/// One index look-up registered for a probe cycle.
#[derive(Debug, Clone)]
pub struct ProbeQuery {
    /// Id of the active query.
    pub query_id: QueryId,
    /// The indexed column to probe.
    pub column: usize,
    /// The key or key range to look up.
    pub range: ProbeRange,
    /// Optional residual predicate evaluated on the fetched rows.
    pub residual: Option<Expr>,
    /// Optional pinned read snapshot (`None` = the cycle's own snapshot; see
    /// [`crate::clockscan::ScanQuery::snapshot`]).
    pub snapshot: Option<crate::mvcc::Snapshot>,
}

impl ProbeQuery {
    /// An exact-match probe.
    pub fn key(query_id: QueryId, column: usize, key: Value) -> Self {
        ProbeQuery {
            query_id,
            column,
            range: ProbeRange::Key(key),
            residual: None,
            snapshot: None,
        }
    }

    /// A range probe.
    pub fn range(query_id: QueryId, column: usize, range: ProbeRange) -> Self {
        ProbeQuery {
            query_id,
            column,
            range,
            residual: None,
            snapshot: None,
        }
    }

    /// Attaches a residual predicate.
    pub fn with_residual(mut self, residual: Expr) -> Self {
        self.residual = Some(residual);
        self
    }

    /// Pins the probe to a fixed read snapshot.
    pub fn at_snapshot(mut self, snapshot: Option<crate::mvcc::Snapshot>) -> Self {
        self.snapshot = snapshot;
        self
    }
}

/// Result of one index-probe cycle.
#[derive(Debug, Default)]
pub struct ProbeCycleResult {
    /// Fetched rows, annotated with the queries that selected them. Rows
    /// fetched by several probes of the batch are emitted once (NF² sharing).
    pub tuples: Vec<QTuple>,
    /// Per-update results, in arrival order.
    pub update_results: Vec<UpdateResult>,
    /// Ids of the queries served by this cycle.
    pub served_queries: Vec<QueryId>,
}

/// The shared index-probe operator for one table.
pub struct IndexProbe {
    table: Arc<RwLock<Table>>,
    oracle: Arc<TimestampOracle>,
    pending_queries: Mutex<VecDeque<ProbeQuery>>,
    pending_updates: Mutex<VecDeque<UpdateOp>>,
}

impl IndexProbe {
    /// Creates an index-probe operator over a table. Probed columns must have
    /// a secondary index or be the primary key; otherwise the probe falls
    /// back to a (correct but slow) scan of the table.
    pub fn new(table: Arc<RwLock<Table>>, oracle: Arc<TimestampOracle>) -> Self {
        IndexProbe {
            table,
            oracle,
            pending_queries: Mutex::new(VecDeque::new()),
            pending_updates: Mutex::new(VecDeque::new()),
        }
    }

    /// Schema of the probed table.
    pub fn schema(&self) -> Schema {
        self.table.read().schema().clone()
    }

    /// Queues a probe for the next cycle.
    pub fn enqueue_query(&self, query: ProbeQuery) {
        self.pending_queries.lock().push_back(query);
    }

    /// Queues an update for the next cycle.
    pub fn enqueue_update(&self, update: UpdateOp) {
        self.pending_updates.lock().push_back(update);
    }

    /// Number of probes waiting for the next cycle.
    pub fn pending_query_count(&self) -> usize {
        self.pending_queries.lock().len()
    }

    /// Runs one cycle: applies pending updates in arrival order, then executes
    /// all pending look-ups against one consistent snapshot.
    pub fn run_cycle(&self) -> Result<ProbeCycleResult> {
        let queries: Vec<ProbeQuery> = self.pending_queries.lock().drain(..).collect();
        let updates: Vec<UpdateOp> = self.pending_updates.lock().drain(..).collect();
        self.execute_batch(&queries, &updates)
    }

    /// Executes an explicit batch of probes and updates.
    pub fn execute_batch(
        &self,
        queries: &[ProbeQuery],
        updates: &[UpdateOp],
    ) -> Result<ProbeCycleResult> {
        let mut result = ProbeCycleResult::default();

        if !updates.is_empty() {
            let commit_ts = self.oracle.next_commit_ts();
            let mut table = self.table.write();
            for update in updates {
                let applied = apply_update(&mut table, update, commit_ts)?;
                result.update_results.push(applied);
            }
            drop(table);
            self.oracle.publish(commit_ts);
        }

        let default_snapshot = self.oracle.read_ts();
        result.served_queries = queries.iter().map(|q| q.query_id).collect();
        if queries.is_empty() {
            return Ok(result);
        }

        // Group probes by their effective snapshot (pinned probes read their
        // own version set); within each group the fetched rows deduplicate as
        // before.
        let groups = crate::mvcc::group_by_snapshot(queries, default_snapshot, |q| q.snapshot);
        let table = self.table.read();
        for (snapshot, members) in groups {
            self.probe_group(&table, snapshot, &members, &mut result)?;
        }
        Ok(result)
    }

    /// Executes one snapshot group of probes: every look-up reads `snapshot`,
    /// and rows fetched by several probes of the group are emitted once.
    fn probe_group(
        &self,
        table: &Table,
        snapshot: crate::mvcc::Snapshot,
        queries: &[&ProbeQuery],
        result: &mut ProbeCycleResult,
    ) -> Result<()> {
        // Deduplicate fetched rows across all probes of the batch: the NF²
        // data-query model stores each row once with the union of interested
        // queries.
        let mut by_row: std::collections::HashMap<crate::table::RowId, QuerySet> =
            std::collections::HashMap::new();
        for q in queries {
            let rows: Vec<(crate::table::RowId, &shareddb_common::Tuple)> = match &q.range {
                ProbeRange::Key(key) => {
                    if table.has_index_on(q.column) {
                        table.index_lookup(q.column, key, snapshot)
                    } else if table.primary_key() == [q.column] {
                        table
                            .lookup_pk(std::slice::from_ref(key), snapshot)
                            .into_iter()
                            .collect()
                    } else {
                        // Fallback: scan (correct, but the planner should have
                        // avoided this).
                        table
                            .scan(snapshot)
                            .filter(|(_, row)| row[q.column].sql_eq(key))
                            .collect()
                    }
                }
                ProbeRange::Range { low, high } => {
                    if table.has_index_on(q.column) {
                        table.index_range(q.column, as_ref_bound(low), as_ref_bound(high), snapshot)
                    } else {
                        table
                            .scan(snapshot)
                            .filter(|(_, row)| range_contains(low, high, &row[q.column]))
                            .collect()
                    }
                }
            };
            for (rid, row) in rows {
                if let Some(residual) = &q.residual {
                    if !residual.eval_predicate(row)? {
                        continue;
                    }
                }
                by_row.entry(rid).or_default().insert(q.query_id);
            }
        }
        let mut rows: Vec<(crate::table::RowId, QuerySet)> = by_row.into_iter().collect();
        rows.sort_by_key(|(rid, _)| *rid);
        for (rid, queries) in rows {
            if let Some(row) = table.read(rid, snapshot) {
                result.tuples.push(QTuple::new(row.clone(), queries));
            }
        }
        Ok(())
    }
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn range_contains(low: &Bound<Value>, high: &Bound<Value>, v: &Value) -> bool {
    let low_ok = match low {
        Bound::Unbounded => true,
        Bound::Included(l) => v >= l,
        Bound::Excluded(l) => v > l,
    };
    let high_ok = match high {
        Bound::Unbounded => true,
        Bound::Included(h) => v <= h,
        Bound::Excluded(h) => v < h,
    };
    low_ok && high_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, Column, DataType};

    fn setup() -> (Arc<RwLock<Table>>, Arc<TimestampOracle>, IndexProbe) {
        let schema = Schema::new(vec![
            Column::new("ID", DataType::Int).with_qualifier("T"),
            Column::new("NAME", DataType::Text).with_qualifier("T"),
            Column::new("QTY", DataType::Int).with_qualifier("T"),
        ]);
        let mut t = Table::new("T", schema, vec![0]);
        t.create_index("T_ID", 0).unwrap();
        t.create_index("T_QTY", 2).unwrap();
        for i in 0..200i64 {
            t.insert(
                tuple![i, format!("row{i}"), i % 20],
                shareddb_common::ids::Timestamp(0),
            )
            .unwrap();
        }
        let table = Arc::new(RwLock::new(t));
        let oracle = Arc::new(TimestampOracle::new());
        let probe = IndexProbe::new(Arc::clone(&table), Arc::clone(&oracle));
        (table, oracle, probe)
    }

    #[test]
    fn batched_point_lookups_share_rows() {
        let (_, _, probe) = setup();
        // Three queries, two of which ask for the same key.
        probe.enqueue_query(ProbeQuery::key(QueryId(1), 0, Value::Int(5)));
        probe.enqueue_query(ProbeQuery::key(QueryId(2), 0, Value::Int(5)));
        probe.enqueue_query(ProbeQuery::key(QueryId(3), 0, Value::Int(7)));
        let res = probe.run_cycle().unwrap();
        assert_eq!(res.served_queries.len(), 3);
        // Row 5 appears once, subscribed by queries 1 and 2.
        assert_eq!(res.tuples.len(), 2);
        let row5 = res
            .tuples
            .iter()
            .find(|t| t.tuple[0] == Value::Int(5))
            .unwrap();
        assert_eq!(row5.queries.len(), 2);
    }

    #[test]
    fn range_probe_and_residual() {
        let (_, _, probe) = setup();
        probe.enqueue_query(
            ProbeQuery::range(
                QueryId(1),
                2,
                ProbeRange::between(Value::Int(18), Value::Int(19)),
            )
            .with_residual(Expr::col(0).lt(Expr::lit(100i64))),
        );
        let res = probe.run_cycle().unwrap();
        // QTY in {18, 19} occurs for 20 rows; residual keeps ids < 100 → 10.
        assert_eq!(res.tuples.len(), 10);
        assert!(res
            .tuples
            .iter()
            .all(|t| t.tuple[2] >= Value::Int(18) && t.tuple[0] < Value::Int(100)));
    }

    #[test]
    fn updates_run_before_lookups() {
        let (_, _, probe) = setup();
        probe.enqueue_update(UpdateOp::Update {
            assignments: vec![(2, Expr::lit(999i64))],
            predicate: Expr::col(0).eq(Expr::lit(3i64)),
        });
        probe.enqueue_query(ProbeQuery::key(QueryId(1), 0, Value::Int(3)));
        let res = probe.run_cycle().unwrap();
        assert_eq!(res.update_results[0].rows_affected, 1);
        assert_eq!(res.tuples.len(), 1);
        assert_eq!(res.tuples[0].tuple[2], Value::Int(999));
    }

    #[test]
    fn probe_on_unindexed_column_falls_back_to_scan() {
        let (_, _, probe) = setup();
        probe.enqueue_query(ProbeQuery::key(QueryId(1), 1, Value::text("row42")));
        let res = probe.run_cycle().unwrap();
        assert_eq!(res.tuples.len(), 1);
        assert_eq!(res.tuples[0].tuple[0], Value::Int(42));
    }

    #[test]
    fn greater_and_less_than_ranges() {
        let (_, _, probe) = setup();
        probe.enqueue_query(ProbeQuery::range(
            QueryId(1),
            0,
            ProbeRange::greater_than(Value::Int(195)),
        ));
        probe.enqueue_query(ProbeQuery::range(
            QueryId(2),
            0,
            ProbeRange::less_than(Value::Int(2)),
        ));
        let res = probe.run_cycle().unwrap();
        let q1: Vec<_> = res
            .tuples
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .collect();
        let q2: Vec<_> = res
            .tuples
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .collect();
        assert_eq!(q1.len(), 4); // 196..199
        assert_eq!(q2.len(), 2); // 0, 1
    }

    #[test]
    fn deleted_rows_not_returned() {
        let (_, _, probe) = setup();
        probe.enqueue_update(UpdateOp::Delete {
            predicate: Expr::col(0).eq(Expr::lit(10i64)),
        });
        probe.enqueue_query(ProbeQuery::key(QueryId(1), 0, Value::Int(10)));
        let res = probe.run_cycle().unwrap();
        assert!(res.tuples.is_empty());
    }
}

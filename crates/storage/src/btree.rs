//! An in-memory B+-tree index.
//!
//! The original Crescando storage manager only supported full table scans via
//! ClockScan; for SharedDB the authors "extended Crescando and implemented
//! B-Tree indexes and index probe operators as an additional access path"
//! (Section 4.4). This module is that extension: a classic order-`B` B+-tree
//! mapping a key [`Value`] to a posting list of [`RowId`]s. Keys may be
//! duplicated across rows (secondary indexes), so each leaf entry carries the
//! full posting list for its key.
//!
//! The tree is single-writer / multi-reader; the owning [`crate::Table`] wraps
//! it in the appropriate lock. Visibility (MVCC) is *not* handled here — the
//! probe operators filter row ids against their snapshot after the lookup.

use crate::table::RowId;
use shareddb_common::Value;
use std::fmt;
use std::ops::Bound;

/// Maximum number of keys per node. 2*B children for internal nodes.
const MAX_KEYS: usize = 32;
/// Minimum number of keys per node after deletion rebalancing.
const MIN_KEYS: usize = MAX_KEYS / 2;

/// A B+-tree index from key values to posting lists of row ids.
pub struct BTreeIndex {
    root: Node,
    len: usize,
    entries: usize,
}

enum Node {
    Leaf(LeafNode),
    Internal(InternalNode),
}

struct LeafNode {
    keys: Vec<Value>,
    /// Posting list per key: the row ids of all row versions with this key.
    postings: Vec<Vec<RowId>>,
}

struct InternalNode {
    /// Separator keys; `children[i]` holds keys `< keys[i]`,
    /// `children[i+1]` holds keys `>= keys[i]`.
    keys: Vec<Value>,
    children: Vec<Node>,
}

enum InsertResult {
    /// No structural change.
    Done,
    /// The child split; the new right sibling and its first key bubble up.
    Split(Value, Node),
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BTreeIndex {
            root: Node::Leaf(LeafNode {
                keys: Vec::new(),
                postings: Vec::new(),
            }),
            len: 0,
            entries: 0,
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.len
    }

    /// Number of `(key, row)` entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// True when the index contains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts a `(key, row)` pair. Duplicate `(key, row)` pairs are ignored.
    pub fn insert(&mut self, key: Value, row: RowId) {
        let (added_key, added_entry, result) = self.root.insert(key, row);
        if added_key {
            self.len += 1;
        }
        if added_entry {
            self.entries += 1;
        }
        if let InsertResult::Split(sep, right) = result {
            // Grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal(InternalNode {
                    keys: Vec::new(),
                    children: Vec::new(),
                }),
            );
            if let Node::Internal(new_root) = &mut self.root {
                new_root.keys.push(sep);
                new_root.children.push(old_root);
                new_root.children.push(right);
            }
        }
    }

    /// Removes a `(key, row)` pair. Returns `true` when the pair was present.
    ///
    /// Removal uses lazy deletion for simplicity and predictable latency: the
    /// row id is removed from the posting list and empty posting lists are
    /// dropped from their leaf, but underfull leaves are only merged when a
    /// later insert splits through them. This keeps removals O(log n) without
    /// the full rebalancing machinery; the tree never returns wrong results.
    pub fn remove(&mut self, key: &Value, row: RowId) -> bool {
        let (removed, removed_key) = self.root.remove(key, row);
        if removed {
            self.entries -= 1;
        }
        if removed_key {
            self.len -= 1;
        }
        removed
    }

    /// Returns the posting list for an exact key (empty slice when absent).
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.root.get(key).unwrap_or(&[])
    }

    /// Returns all `(key, row)` pairs with keys in the given range, in key
    /// order.
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<(Value, RowId)> {
        let mut out = Vec::new();
        self.root.range(&low, &high, &mut out);
        out
    }

    /// Returns all row ids with keys in the given range.
    pub fn range_rows(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        self.range(low, high).into_iter().map(|(_, r)| r).collect()
    }

    /// Iterates over every `(key, posting list)` pair in key order. Intended
    /// for tests and for rebuilding indexes after recovery.
    pub fn iter_all(&self) -> Vec<(Value, Vec<RowId>)> {
        let mut out = Vec::new();
        self.root.collect_all(&mut out);
        out
    }

    /// Depth of the tree (1 for a single leaf). Exposed for tests that verify
    /// the tree actually splits.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Verifies structural invariants (key ordering, separator correctness,
    /// fanout bounds). Used by tests and property-based checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.root.check(None, None, true)?;
        Ok(())
    }
}

impl Node {
    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(n) => 1 + n.children[0].depth(),
        }
    }

    fn get(&self, key: &Value) -> Option<&[RowId]> {
        match self {
            Node::Leaf(leaf) => leaf
                .keys
                .binary_search(key)
                .ok()
                .map(|i| leaf.postings[i].as_slice()),
            Node::Internal(node) => {
                let idx = node.child_index(key);
                node.children[idx].get(key)
            }
        }
    }

    /// Returns (added_new_key, added_new_entry, split_result).
    fn insert(&mut self, key: Value, row: RowId) -> (bool, bool, InsertResult) {
        match self {
            Node::Leaf(leaf) => match leaf.keys.binary_search(&key) {
                Ok(i) => {
                    if leaf.postings[i].contains(&row) {
                        (false, false, InsertResult::Done)
                    } else {
                        leaf.postings[i].push(row);
                        (false, true, InsertResult::Done)
                    }
                }
                Err(pos) => {
                    leaf.keys.insert(pos, key);
                    leaf.postings.insert(pos, vec![row]);
                    if leaf.keys.len() > MAX_KEYS {
                        let (sep, right) = leaf.split();
                        (true, true, InsertResult::Split(sep, right))
                    } else {
                        (true, true, InsertResult::Done)
                    }
                }
            },
            Node::Internal(node) => {
                let idx = node.child_index(&key);
                let (added_key, added_entry, result) = node.children[idx].insert(key, row);
                if let InsertResult::Split(sep, right) = result {
                    node.keys.insert(idx, sep);
                    node.children.insert(idx + 1, right);
                    if node.keys.len() > MAX_KEYS {
                        let (sep, right) = node.split();
                        return (added_key, added_entry, InsertResult::Split(sep, right));
                    }
                }
                (added_key, added_entry, InsertResult::Done)
            }
        }
    }

    /// Returns (removed_entry, removed_whole_key).
    fn remove(&mut self, key: &Value, row: RowId) -> (bool, bool) {
        match self {
            Node::Leaf(leaf) => match leaf.keys.binary_search(key) {
                Ok(i) => {
                    let posting = &mut leaf.postings[i];
                    match posting.iter().position(|r| *r == row) {
                        Some(p) => {
                            posting.swap_remove(p);
                            if posting.is_empty() {
                                leaf.keys.remove(i);
                                leaf.postings.remove(i);
                                (true, true)
                            } else {
                                (true, false)
                            }
                        }
                        None => (false, false),
                    }
                }
                Err(_) => (false, false),
            },
            Node::Internal(node) => {
                let idx = node.child_index(key);
                node.children[idx].remove(key, row)
            }
        }
    }

    fn range(&self, low: &Bound<&Value>, high: &Bound<&Value>, out: &mut Vec<(Value, RowId)>) {
        match self {
            Node::Leaf(leaf) => {
                for (k, posting) in leaf.keys.iter().zip(&leaf.postings) {
                    if bound_contains(low, high, k) {
                        for &r in posting {
                            out.push((k.clone(), r));
                        }
                    }
                }
            }
            Node::Internal(node) => {
                // Child i covers keys in [keys[i-1], keys[i]); prune children
                // whose interval cannot intersect the requested bounds.
                for (i, child) in node.children.iter().enumerate() {
                    let lower_sep = i.checked_sub(1).map(|j| &node.keys[j]);
                    let upper_sep = node.keys.get(i);
                    // Skip when every key of the child is above the high bound.
                    let above_high = match (lower_sep, high) {
                        (Some(sep), Bound::Included(h)) => *h < sep,
                        (Some(sep), Bound::Excluded(h)) => *h <= sep,
                        _ => false,
                    };
                    // Skip when every key of the child is below the low bound.
                    let below_low = match (upper_sep, low) {
                        (Some(sep), Bound::Included(l)) => *l >= sep,
                        (Some(sep), Bound::Excluded(l)) => *l >= sep,
                        _ => false,
                    };
                    if !above_high && !below_low {
                        child.range(low, high, out);
                    }
                }
            }
        }
    }

    fn collect_all(&self, out: &mut Vec<(Value, Vec<RowId>)>) {
        match self {
            Node::Leaf(leaf) => {
                for (k, p) in leaf.keys.iter().zip(&leaf.postings) {
                    out.push((k.clone(), p.clone()));
                }
            }
            Node::Internal(node) => {
                for child in &node.children {
                    child.collect_all(out);
                }
            }
        }
    }

    fn check(
        &self,
        lower: Option<&Value>,
        upper: Option<&Value>,
        is_root: bool,
    ) -> Result<(), String> {
        match self {
            Node::Leaf(leaf) => {
                if leaf.keys.len() != leaf.postings.len() {
                    return Err("leaf keys/postings length mismatch".into());
                }
                for w in leaf.keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("leaf keys out of order: {} >= {}", w[0], w[1]));
                    }
                }
                for k in &leaf.keys {
                    if let Some(lo) = lower {
                        if k < lo {
                            return Err(format!("leaf key {k} below lower bound {lo}"));
                        }
                    }
                    if let Some(hi) = upper {
                        if k >= hi {
                            return Err(format!("leaf key {k} not below upper bound {hi}"));
                        }
                    }
                }
                if leaf.postings.iter().any(|p| p.is_empty()) {
                    return Err("empty posting list".into());
                }
                Ok(())
            }
            Node::Internal(node) => {
                if node.children.len() != node.keys.len() + 1 {
                    return Err("internal fanout mismatch".into());
                }
                if !is_root && node.keys.len() < MIN_KEYS / 2 {
                    // Lazy deletion means we only guarantee a loose lower
                    // bound; the important invariants are ordering ones.
                }
                for w in node.keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("internal keys out of order".into());
                    }
                }
                for (i, child) in node.children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(&node.keys[i - 1])
                    };
                    let hi = if i == node.keys.len() {
                        upper
                    } else {
                        Some(&node.keys[i])
                    };
                    child.check(lo, hi, false)?;
                }
                Ok(())
            }
        }
    }
}

impl LeafNode {
    fn split(&mut self) -> (Value, Node) {
        let mid = self.keys.len() / 2;
        let right_keys = self.keys.split_off(mid);
        let right_postings = self.postings.split_off(mid);
        let sep = right_keys[0].clone();
        (
            sep,
            Node::Leaf(LeafNode {
                keys: right_keys,
                postings: right_postings,
            }),
        )
    }
}

impl InternalNode {
    fn child_index(&self, key: &Value) -> usize {
        // First separator strictly greater than key determines the child.
        match self.keys.binary_search(key) {
            Ok(i) => i + 1, // equal keys go right (keys >= sep live right)
            Err(i) => i,
        }
    }

    fn split(&mut self) -> (Value, Node) {
        let mid = self.keys.len() / 2;
        let sep = self.keys[mid].clone();
        let right_keys = self.keys.split_off(mid + 1);
        self.keys.pop(); // remove the separator itself
        let right_children = self.children.split_off(mid + 1);
        (
            sep,
            Node::Internal(InternalNode {
                keys: right_keys,
                children: right_children,
            }),
        )
    }
}

fn bound_contains(low: &Bound<&Value>, high: &Bound<&Value>, key: &Value) -> bool {
    let low_ok = match low {
        Bound::Unbounded => true,
        Bound::Included(l) => key >= *l,
        Bound::Excluded(l) => key > *l,
    };
    let high_ok = match high {
        Bound::Unbounded => true,
        Bound::Included(h) => key <= *h,
        Bound::Excluded(h) => key < *h,
    };
    low_ok && high_ok
}

impl fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("keys", &self.len)
            .field("entries", &self.entries)
            .field("depth", &self.depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> RowId {
        RowId(i)
    }

    #[test]
    fn insert_and_get() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::Int(5), row(50));
        idx.insert(Value::Int(3), row(30));
        idx.insert(Value::Int(5), row(51));
        assert_eq!(idx.get(&Value::Int(5)), &[row(50), row(51)]);
        assert_eq!(idx.get(&Value::Int(3)), &[row(30)]);
        assert!(idx.get(&Value::Int(99)).is_empty());
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.entry_count(), 3);
        idx.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_pair_ignored() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::Int(1), row(1));
        idx.insert(Value::Int(1), row(1));
        assert_eq!(idx.entry_count(), 1);
    }

    #[test]
    fn splits_preserve_all_keys() {
        let mut idx = BTreeIndex::new();
        let n = 5_000i64;
        for i in 0..n {
            idx.insert(Value::Int((i * 7919) % n), row(i as u64));
        }
        assert!(idx.depth() > 1, "tree should have split");
        idx.check_invariants().unwrap();
        assert_eq!(idx.entry_count(), n as usize);
        for i in 0..n {
            let key = Value::Int((i * 7919) % n);
            assert!(
                idx.get(&key).contains(&row(i as u64)),
                "missing entry for key {key}"
            );
        }
    }

    #[test]
    fn range_queries() {
        let mut idx = BTreeIndex::new();
        for i in 0..1000i64 {
            idx.insert(Value::Int(i), row(i as u64));
        }
        let rows = idx.range_rows(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(15)),
        );
        assert_eq!(rows, vec![row(10), row(11), row(12), row(13), row(14)]);
        let rows = idx.range_rows(Bound::Excluded(&Value::Int(995)), Bound::Unbounded);
        assert_eq!(rows, vec![row(996), row(997), row(998), row(999)]);
        let rows = idx.range_rows(Bound::Unbounded, Bound::Included(&Value::Int(2)));
        assert_eq!(rows, vec![row(0), row(1), row(2)]);
        // Range results are in key order.
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn range_on_text_keys() {
        let mut idx = BTreeIndex::new();
        for (i, name) in ["ADAMS", "BAKER", "CLARK", "DAVIS", "EVANS"]
            .iter()
            .enumerate()
        {
            idx.insert(Value::text(*name), row(i as u64));
        }
        let rows = idx.range_rows(
            Bound::Included(&Value::text("B")),
            Bound::Excluded(&Value::text("D")),
        );
        assert_eq!(rows, vec![row(1), row(2)]);
    }

    #[test]
    fn remove_entries_and_keys() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::Int(1), row(10));
        idx.insert(Value::Int(1), row(11));
        idx.insert(Value::Int(2), row(20));
        assert!(idx.remove(&Value::Int(1), row(10)));
        assert!(!idx.remove(&Value::Int(1), row(10)));
        assert_eq!(idx.get(&Value::Int(1)), &[row(11)]);
        assert!(idx.remove(&Value::Int(1), row(11)));
        assert!(idx.get(&Value::Int(1)).is_empty());
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.entry_count(), 1);
        assert!(!idx.remove(&Value::Int(42), row(1)));
        idx.check_invariants().unwrap();
    }

    #[test]
    fn remove_across_splits() {
        let mut idx = BTreeIndex::new();
        for i in 0..2000i64 {
            idx.insert(Value::Int(i), row(i as u64));
        }
        for i in (0..2000i64).step_by(2) {
            assert!(idx.remove(&Value::Int(i), row(i as u64)));
        }
        idx.check_invariants().unwrap();
        assert_eq!(idx.entry_count(), 1000);
        for i in 0..2000i64 {
            let present = !idx.get(&Value::Int(i)).is_empty();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn mixed_type_keys_follow_total_order() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::Int(1), row(1));
        idx.insert(Value::text("a"), row(2));
        idx.insert(Value::Null, row(3));
        idx.check_invariants().unwrap();
        let all = idx.iter_all();
        assert_eq!(all.len(), 3);
        // NULL sorts first in the total order.
        assert_eq!(all[0].0, Value::Null);
    }

    #[test]
    fn iter_all_matches_inserted_content() {
        let mut idx = BTreeIndex::new();
        for i in 0..500i64 {
            idx.insert(Value::Int(i % 50), row(i as u64));
        }
        let all = idx.iter_all();
        assert_eq!(all.len(), 50);
        assert_eq!(all.iter().map(|(_, p)| p.len()).sum::<usize>(), 500);
    }
}

//! Multi-versioned, main-memory tables.
//!
//! Tables store every row version in an append-only arena. A version carries a
//! `[begin, end)` timestamp interval; reads at a snapshot only observe
//! versions whose interval contains the snapshot timestamp (snapshot
//! isolation, Section 4.4). Updates never modify a version in place: they end
//! the old version and append a new one, which keeps concurrent readers of an
//! older snapshot consistent without any locking during the scan itself.

use crate::btree::BTreeIndex;
use crate::mvcc::{Snapshot, TS_INFINITY};
use shareddb_common::ids::Timestamp;
use shareddb_common::{Error, Result, Schema, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;

/// Index of a row *version* in the table's version arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl RowId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One stored row version.
#[derive(Debug, Clone)]
pub struct StoredRow {
    /// The row payload.
    pub values: Tuple,
    /// Commit timestamp of the write that created this version.
    pub begin: Timestamp,
    /// Commit timestamp of the write that superseded / deleted this version
    /// (`TS_INFINITY` while live).
    pub end: Timestamp,
}

impl StoredRow {
    /// True when the version is visible in the given snapshot.
    #[inline]
    pub fn visible(&self, snapshot: Snapshot) -> bool {
        snapshot.sees(self.begin, self.end)
    }

    /// True when the version has not been superseded by any write.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.end == TS_INFINITY
    }
}

/// A secondary index maintained by the table.
struct SecondaryIndex {
    name: String,
    column: usize,
    tree: BTreeIndex,
}

/// A main-memory, multi-versioned table with an optional primary key and any
/// number of secondary B-tree indexes.
pub struct Table {
    name: String,
    schema: Schema,
    /// Columns forming the primary key (empty = no primary key).
    primary_key: Vec<usize>,
    /// Append-only arena of row versions.
    rows: Vec<StoredRow>,
    /// Maps a primary-key value vector to the row id of its *latest* version.
    pk_index: HashMap<Vec<Value>, RowId>,
    /// Secondary indexes. Indexes contain entries for every version; probes
    /// filter by visibility.
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema, primary_key: Vec<usize>) -> Self {
        Table {
            name: name.into(),
            schema,
            primary_key,
            rows: Vec::new(),
            pk_index: HashMap::new(),
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The primary-key column indices.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Number of row versions stored (including superseded ones).
    pub fn version_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of live rows.
    pub fn live_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_live()).count()
    }

    /// Creates a secondary index over a single column and backfills it with
    /// all existing versions.
    pub fn create_index(&mut self, name: impl Into<String>, column: usize) -> Result<()> {
        if column >= self.schema.len() {
            return Err(Error::UnknownColumn(format!("column #{column}")));
        }
        let mut tree = BTreeIndex::new();
        for (i, row) in self.rows.iter().enumerate() {
            tree.insert(row.values[column].clone(), RowId(i as u64));
        }
        self.indexes.push(SecondaryIndex {
            name: name.into(),
            column,
            tree,
        });
        Ok(())
    }

    /// Names of the secondary indexes.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|i| i.name.as_str()).collect()
    }

    /// Returns the column a named index is built on.
    pub fn index_column(&self, name: &str) -> Option<usize> {
        self.indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
            .map(|i| i.column)
    }

    /// True when some index covers `column`.
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.iter().any(|i| i.column == column)
    }

    fn pk_values(&self, values: &Tuple) -> Vec<Value> {
        self.primary_key
            .iter()
            .map(|&i| values[i].clone())
            .collect()
    }

    /// Inserts a new row with the given commit timestamp.
    ///
    /// Fails when the tuple does not match the schema or when a live row with
    /// the same primary key already exists.
    pub fn insert(&mut self, values: Tuple, ts: Timestamp) -> Result<RowId> {
        self.schema.check_tuple(values.values())?;
        if !self.primary_key.is_empty() {
            let key = self.pk_values(&values);
            if let Some(&existing) = self.pk_index.get(&key) {
                if self.rows[existing.idx()].is_live() {
                    return Err(Error::ConstraintViolation(format!(
                        "duplicate primary key in table {}: {:?}",
                        self.name, key
                    )));
                }
            }
        }
        let row_id = RowId(self.rows.len() as u64);
        for index in &mut self.indexes {
            index.tree.insert(values[index.column].clone(), row_id);
        }
        if !self.primary_key.is_empty() {
            let key = self.pk_values(&values);
            self.pk_index.insert(key, row_id);
        }
        self.rows.push(StoredRow {
            values,
            begin: ts,
            end: TS_INFINITY,
        });
        Ok(row_id)
    }

    /// Replaces the row version `row_id` with `new_values` at timestamp `ts`.
    /// Returns the id of the new version.
    pub fn update_row(&mut self, row_id: RowId, new_values: Tuple, ts: Timestamp) -> Result<RowId> {
        self.schema.check_tuple(new_values.values())?;
        let old = self
            .rows
            .get(row_id.idx())
            .ok_or_else(|| Error::Internal(format!("invalid row id {row_id:?}")))?;
        if !old.is_live() {
            return Err(Error::Internal(format!(
                "update of non-live row version {row_id:?} in table {}",
                self.name
            )));
        }
        let old_key = self.pk_values(&old.values);
        let new_key = self.pk_values(&new_values);
        if !self.primary_key.is_empty() && old_key != new_key {
            // Primary-key update: treat as delete + insert, enforcing
            // uniqueness of the new key.
            if let Some(&existing) = self.pk_index.get(&new_key) {
                if self.rows[existing.idx()].is_live() && existing != row_id {
                    return Err(Error::ConstraintViolation(format!(
                        "duplicate primary key in table {}: {:?}",
                        self.name, new_key
                    )));
                }
            }
        }
        // End the old version and append the new one.
        self.rows[row_id.idx()].end = ts;
        let new_id = RowId(self.rows.len() as u64);
        for index in &mut self.indexes {
            index.tree.insert(new_values[index.column].clone(), new_id);
        }
        if !self.primary_key.is_empty() {
            self.pk_index.insert(new_key, new_id);
            if old_key != self.pk_values(&new_values) {
                // Only remap; the old key still points at the old version for
                // older snapshots, but lookups of the latest state should no
                // longer find it.
                self.pk_index.remove(&old_key);
            }
        }
        self.rows.push(StoredRow {
            values: new_values,
            begin: ts,
            end: TS_INFINITY,
        });
        Ok(new_id)
    }

    /// Deletes the row version `row_id` at timestamp `ts`.
    pub fn delete_row(&mut self, row_id: RowId, ts: Timestamp) -> Result<()> {
        let row = self
            .rows
            .get_mut(row_id.idx())
            .ok_or_else(|| Error::Internal(format!("invalid row id {row_id:?}")))?;
        if !row.is_live() {
            return Err(Error::Internal(format!(
                "delete of non-live row version {row_id:?} in table {}",
                self.name
            )));
        }
        row.end = ts;
        Ok(())
    }

    /// Returns the stored row for a version id.
    pub fn row(&self, row_id: RowId) -> Option<&StoredRow> {
        self.rows.get(row_id.idx())
    }

    /// Returns the visible tuple for a version id under a snapshot.
    pub fn read(&self, row_id: RowId, snapshot: Snapshot) -> Option<&Tuple> {
        self.rows
            .get(row_id.idx())
            .filter(|r| r.visible(snapshot))
            .map(|r| &r.values)
    }

    /// Iterates over all row versions visible in the snapshot.
    pub fn scan(&self, snapshot: Snapshot) -> impl Iterator<Item = (RowId, &Tuple)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.visible(snapshot))
            .map(|(i, r)| (RowId(i as u64), &r.values))
    }

    /// Iterates over all *live* row versions (the newest state), regardless of
    /// snapshots. Updates and deletes act on live versions because updates are
    /// applied in arrival order against the latest state (Section 4.4).
    pub fn scan_live(&self) -> impl Iterator<Item = (RowId, &Tuple)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_live())
            .map(|(i, r)| (RowId(i as u64), &r.values))
    }

    /// Looks up the latest version for a primary key and returns it if it is
    /// visible in the snapshot.
    pub fn lookup_pk(&self, key: &[Value], snapshot: Snapshot) -> Option<(RowId, &Tuple)> {
        let row_id = *self.pk_index.get(key)?;
        self.read(row_id, snapshot).map(|t| (row_id, t))
    }

    /// Looks up the latest *live* version for a primary key regardless of
    /// snapshots (used by updates, which always act on the newest state).
    pub fn lookup_pk_live(&self, key: &[Value]) -> Option<RowId> {
        let row_id = *self.pk_index.get(key)?;
        self.rows[row_id.idx()].is_live().then_some(row_id)
    }

    /// Probes a secondary index for an exact key, returning all visible rows.
    pub fn index_lookup(
        &self,
        column: usize,
        key: &Value,
        snapshot: Snapshot,
    ) -> Vec<(RowId, &Tuple)> {
        let Some(index) = self.indexes.iter().find(|i| i.column == column) else {
            return Vec::new();
        };
        index
            .tree
            .get(key)
            .iter()
            .filter_map(|&rid| self.read(rid, snapshot).map(|t| (rid, t)))
            .collect()
    }

    /// Probes a secondary index for a key range, returning all visible rows in
    /// key order.
    pub fn index_range(
        &self,
        column: usize,
        low: Bound<&Value>,
        high: Bound<&Value>,
        snapshot: Snapshot,
    ) -> Vec<(RowId, &Tuple)> {
        let Some(index) = self.indexes.iter().find(|i| i.column == column) else {
            return Vec::new();
        };
        index
            .tree
            .range_rows(low, high)
            .into_iter()
            .filter_map(|rid| self.read(rid, snapshot).map(|t| (rid, t)))
            .collect()
    }

    /// Approximate memory footprint in bytes (payloads only).
    pub fn heap_size(&self) -> usize {
        self.rows.iter().map(|r| r.values.heap_size()).sum()
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("columns", &self.schema.len())
            .field("versions", &self.rows.len())
            .field("indexes", &self.indexes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, Column, DataType};

    fn items_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("ITEM_ID", DataType::Int).with_qualifier("ITEM"),
            Column::new("TITLE", DataType::Text).with_qualifier("ITEM"),
            Column::new("PRICE", DataType::Float).with_qualifier("ITEM"),
        ]);
        Table::new("ITEM", schema, vec![0])
    }

    #[test]
    fn insert_and_snapshot_scan() {
        let mut t = items_table();
        t.insert(tuple![1i64, "Book A", 10.0f64], Timestamp(1))
            .unwrap();
        t.insert(tuple![2i64, "Book B", 20.0f64], Timestamp(2))
            .unwrap();
        // A snapshot at ts=1 sees only the first row.
        assert_eq!(t.scan(Snapshot::at(Timestamp(1))).count(), 1);
        assert_eq!(t.scan(Snapshot::at(Timestamp(2))).count(), 2);
        assert_eq!(t.live_count(), 2);
    }

    #[test]
    fn primary_key_uniqueness() {
        let mut t = items_table();
        t.insert(tuple![1i64, "A", 1.0f64], Timestamp(1)).unwrap();
        let err = t
            .insert(tuple![1i64, "B", 2.0f64], Timestamp(2))
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn update_creates_new_version_old_snapshot_unaffected() {
        let mut t = items_table();
        let r1 = t.insert(tuple![1i64, "A", 1.0f64], Timestamp(1)).unwrap();
        let r2 = t
            .update_row(r1, tuple![1i64, "A", 9.0f64], Timestamp(5))
            .unwrap();
        assert_ne!(r1, r2);
        // Old snapshot still reads the old price.
        let old = t.read(r1, Snapshot::at(Timestamp(3))).unwrap();
        assert_eq!(old[2], Value::Float(1.0));
        assert!(t.read(r2, Snapshot::at(Timestamp(3))).is_none());
        // New snapshot reads the new price and exactly one visible version.
        let snap = Snapshot::at(Timestamp(5));
        let visible: Vec<_> = t.scan(snap).collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].1[2], Value::Float(9.0));
        // Updating a superseded version is a bug.
        assert!(t
            .update_row(r1, tuple![1i64, "A", 2.0f64], Timestamp(6))
            .is_err());
    }

    #[test]
    fn delete_hides_row_from_later_snapshots() {
        let mut t = items_table();
        let r = t.insert(tuple![1i64, "A", 1.0f64], Timestamp(1)).unwrap();
        t.delete_row(r, Timestamp(4)).unwrap();
        assert_eq!(t.scan(Snapshot::at(Timestamp(3))).count(), 1);
        assert_eq!(t.scan(Snapshot::at(Timestamp(4))).count(), 0);
        assert_eq!(t.live_count(), 0);
        assert!(t.delete_row(r, Timestamp(5)).is_err());
    }

    #[test]
    fn pk_lookup_follows_versions() {
        let mut t = items_table();
        let r1 = t.insert(tuple![7i64, "A", 1.0f64], Timestamp(1)).unwrap();
        t.update_row(r1, tuple![7i64, "A", 2.0f64], Timestamp(3))
            .unwrap();
        let (rid, row) = t
            .lookup_pk(&[Value::Int(7)], Snapshot::at(Timestamp(3)))
            .unwrap();
        assert_eq!(row[2], Value::Float(2.0));
        assert!(rid != r1);
        // At an old snapshot the *latest* version is invisible; the lookup
        // reports nothing (index probes fall back to scans for time travel).
        assert!(t
            .lookup_pk(&[Value::Int(7)], Snapshot::at(Timestamp(2)))
            .is_none());
        assert!(t.lookup_pk_live(&[Value::Int(7)]).is_some());
        assert!(t
            .lookup_pk(&[Value::Int(99)], Snapshot::at(Timestamp(9)))
            .is_none());
    }

    #[test]
    fn secondary_index_lookup_and_range() {
        let mut t = items_table();
        t.create_index("ITEM_PRICE", 2).unwrap();
        for i in 0..100i64 {
            t.insert(
                tuple![i, format!("Book {i}"), (i % 10) as f64],
                Timestamp(1),
            )
            .unwrap();
        }
        let snap = Snapshot::at(Timestamp(1));
        let hits = t.index_lookup(2, &Value::Float(3.0), snap);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|(_, r)| r[2] == Value::Float(3.0)));
        let ranged = t.index_range(
            2,
            Bound::Included(&Value::Float(8.0)),
            Bound::Unbounded,
            snap,
        );
        assert_eq!(ranged.len(), 20); // prices 8 and 9
        assert!(t.has_index_on(2));
        assert!(!t.has_index_on(1));
        assert_eq!(t.index_column("item_price"), Some(2));
    }

    #[test]
    fn index_respects_visibility() {
        let mut t = items_table();
        t.create_index("ITEM_PRICE", 2).unwrap();
        let r = t.insert(tuple![1i64, "A", 5.0f64], Timestamp(1)).unwrap();
        t.update_row(r, tuple![1i64, "A", 6.0f64], Timestamp(5))
            .unwrap();
        // At ts=2, only the old version (price 5.0) is visible.
        let snap = Snapshot::at(Timestamp(2));
        assert_eq!(t.index_lookup(2, &Value::Float(5.0), snap).len(), 1);
        assert_eq!(t.index_lookup(2, &Value::Float(6.0), snap).len(), 0);
        // At ts=5 the situation flips.
        let snap = Snapshot::at(Timestamp(5));
        assert_eq!(t.index_lookup(2, &Value::Float(5.0), snap).len(), 0);
        assert_eq!(t.index_lookup(2, &Value::Float(6.0), snap).len(), 1);
    }

    #[test]
    fn index_on_unknown_column_fails() {
        let mut t = items_table();
        assert!(t.create_index("BAD", 17).is_err());
    }

    #[test]
    fn schema_validation_on_insert() {
        let mut t = items_table();
        assert!(t.insert(tuple!["oops", "A", 1.0f64], Timestamp(1)).is_err());
        assert!(t.insert(tuple![1i64], Timestamp(1)).is_err());
    }
}

//! Criterion micro benchmark of the ClockScan shared scan: cycle time as a
//! function of the number of concurrent queries in the batch. The key
//! property is that the cycle time grows far slower than linearly with the
//! query count (the scan over the data is shared; only the predicate-index
//! probes grow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareddb_common::{tuple, DataType, Expr, QueryId};
use shareddb_storage::{Catalog, ClockScan, ScanQuery, TableDef};
use std::sync::Arc;

fn build_catalog(rows: i64) -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("T")
                .column("ID", DataType::Int)
                .column("CATEGORY", DataType::Int)
                .column("PRICE", DataType::Float)
                .primary_key(&["ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "T",
            (0..rows)
                .map(|i| tuple![i, i % 100, (i % 1000) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

fn bench_clockscan(c: &mut Criterion) {
    let catalog = build_catalog(20_000);
    let scan = ClockScan::new(catalog.table("T").unwrap(), catalog.oracle());
    let mut group = c.benchmark_group("clockscan_cycle");
    group.sample_size(10);
    for &queries in &[1usize, 16, 128, 512] {
        // Equality predicates on CATEGORY: indexable by the predicate index.
        let batch: Vec<ScanQuery> = (0..queries)
            .map(|q| {
                ScanQuery::new(
                    QueryId(q as u32 + 1),
                    Expr::col(1).eq(Expr::lit((q % 100) as i64)),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("equality_batch", queries),
            &queries,
            |b, _| b.iter(|| scan.execute_batch(&batch, &[]).unwrap().tuples.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clockscan);
criterion_main!(benches);

//! Criterion micro benchmarks of the shared operators: one shared join/sort
//! for N concurrent queries versus N per-query joins/sorts (the core claim of
//! Sections 3.3 and 3.4 — shared execution bounds the work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareddb_common::{tuple, QTuple, QueryId, SortKey, Value};
use shareddb_core::batch::Activation;
use shareddb_core::operators::{execute_operator, ExecContext};
use shareddb_core::plan::OperatorSpec;
use shareddb_storage::Catalog;

const ROWS: i64 = 2_000;

/// Builds the R side of the join: every row subscribed by a slice of queries.
fn build_side(queries: u32) -> Vec<QTuple> {
    (0..ROWS)
        .map(|i| {
            QTuple::new(
                tuple![i, format!("r{i}")],
                // Each query is interested in half of the rows (high overlap).
                (0..queries).filter(|q| (i + *q as i64) % 2 == 0).collect(),
            )
        })
        .collect()
}

fn probe_side(queries: u32) -> Vec<QTuple> {
    (0..ROWS)
        .map(|i| {
            QTuple::new(
                tuple![i % (ROWS / 2), i],
                (0..queries).filter(|q| (i + *q as i64) % 3 != 0).collect(),
            )
        })
        .collect()
}

fn bench_shared_join(c: &mut Criterion) {
    let catalog = Catalog::new();
    let ctx = ExecContext {
        catalog: &catalog,
        snapshot: catalog.oracle().read_ts(),
    };
    let mut group = c.benchmark_group("shared_hash_join");
    group.sample_size(10);
    for &queries in &[1u32, 16, 64, 256] {
        let build = build_side(queries);
        let probe = probe_side(queries);
        let activations: Vec<(QueryId, Activation)> = (0..queries)
            .map(|q| (QueryId(q + 1), Activation::Participate))
            .collect();
        // One big shared join serving all queries at once.
        group.bench_with_input(BenchmarkId::new("shared", queries), &queries, |b, _| {
            b.iter(|| {
                execute_operator(
                    &OperatorSpec::HashJoin {
                        build_key: 0,
                        probe_key: 0,
                    },
                    &activations,
                    vec![build.clone(), probe.clone()],
                    &ctx,
                )
                .unwrap()
            })
        });
        // The query-at-a-time equivalent: one small join per query.
        group.bench_with_input(BenchmarkId::new("per_query", queries), &queries, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in 0..queries {
                    let act = vec![(QueryId(q + 1), Activation::Participate)];
                    let build_q: Vec<QTuple> = build
                        .iter()
                        .filter(|t| t.queries.contains(QueryId(q + 1)))
                        .cloned()
                        .collect();
                    let probe_q: Vec<QTuple> = probe
                        .iter()
                        .filter(|t| t.queries.contains(QueryId(q + 1)))
                        .cloned()
                        .collect();
                    total += execute_operator(
                        &OperatorSpec::HashJoin {
                            build_key: 0,
                            probe_key: 0,
                        },
                        &act,
                        vec![build_q, probe_q],
                        &ctx,
                    )
                    .unwrap()
                    .len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_shared_sort(c: &mut Criterion) {
    let catalog = Catalog::new();
    let ctx = ExecContext {
        catalog: &catalog,
        snapshot: catalog.oracle().read_ts(),
    };
    let mut group = c.benchmark_group("shared_sort");
    group.sample_size(10);
    for &queries in &[1u32, 16, 64, 256] {
        let input: Vec<QTuple> = (0..ROWS)
            .map(|i| {
                QTuple::new(
                    tuple![(i * 7919) % ROWS, Value::Int(i)],
                    (0..queries).filter(|q| (i + *q as i64) % 2 == 0).collect(),
                )
            })
            .collect();
        let activations: Vec<(QueryId, Activation)> = (0..queries)
            .map(|q| (QueryId(q + 1), Activation::Participate))
            .collect();
        group.bench_with_input(BenchmarkId::new("shared", queries), &queries, |b, _| {
            b.iter(|| {
                execute_operator(
                    &OperatorSpec::Sort {
                        keys: vec![SortKey::asc(0)],
                    },
                    &activations,
                    vec![input.clone()],
                    &ctx,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("per_query", queries), &queries, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in 0..queries {
                    let act = vec![(QueryId(q + 1), Activation::Participate)];
                    let input_q: Vec<QTuple> = input
                        .iter()
                        .filter(|t| t.queries.contains(QueryId(q + 1)))
                        .cloned()
                        .collect();
                    total += execute_operator(
                        &OperatorSpec::Sort {
                            keys: vec![SortKey::asc(0)],
                        },
                        &act,
                        vec![input_q],
                        &ctx,
                    )
                    .unwrap()
                    .len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shared_join, bench_shared_sort);
criterion_main!(benches);

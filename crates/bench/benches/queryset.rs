//! Criterion micro benchmark reproducing the design decision of Section 3.1:
//! the NF² `query_id` attribute is implemented as a **list** because it beat
//! the bitmap representation in the authors' experiments. This bench compares
//! both representations for the typical case (small sets out of a large id
//! space) and the dense case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareddb_common::queryset::{BitmapQuerySet, QuerySet};
use shareddb_common::QueryId;

fn sparse_ids(count: usize, stride: u32, offset: u32) -> Vec<QueryId> {
    (0..count as u32)
        .map(|i| QueryId(offset + i * stride))
        .collect()
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("queryset_intersect");
    for &size in &[4usize, 32, 256] {
        let a_ids = sparse_ids(size, 7, 1);
        let b_ids = sparse_ids(size, 5, 3);
        let list_a: QuerySet = a_ids.iter().copied().collect();
        let list_b: QuerySet = b_ids.iter().copied().collect();
        let mut bm_a = BitmapQuerySet::with_capacity(0, 4096);
        let mut bm_b = BitmapQuerySet::with_capacity(0, 4096);
        for &id in &a_ids {
            bm_a.insert(id);
        }
        for &id in &b_ids {
            bm_b.insert(id);
        }
        group.bench_with_input(BenchmarkId::new("list", size), &size, |bench, _| {
            bench.iter(|| list_a.intersect(&list_b).len())
        });
        group.bench_with_input(BenchmarkId::new("bitmap", size), &size, |bench, _| {
            bench.iter(|| bm_a.intersect(&bm_b).len())
        });
    }
    group.finish();
}

fn bench_insert_and_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("queryset_build");
    for &size in &[8usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("list_insert", size), &size, |bench, _| {
            bench.iter(|| {
                let mut s = QuerySet::new();
                for i in 0..size as u32 {
                    s.insert(QueryId(i * 3));
                }
                s.len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("bitmap_insert", size),
            &size,
            |bench, _| {
                bench.iter(|| {
                    let mut s = BitmapQuerySet::with_capacity(0, (size as u32) * 3 + 64);
                    for i in 0..size as u32 {
                        s.insert(QueryId(i * 3));
                    }
                    s.len()
                })
            },
        );
    }
    // Memory footprint comparison printed once for the record.
    let list: QuerySet = (0..64u32).map(|i| QueryId(i * 50)).collect();
    let mut bitmap = BitmapQuerySet::with_capacity(0, 64 * 50 + 64);
    for id in list.iter() {
        bitmap.insert(id);
    }
    eprintln!(
        "# queryset memory: list={}B bitmap={}B (64 subscribers spread over 3200 ids)",
        list.heap_size(),
        bitmap.heap_size()
    );
    group.finish();
}

criterion_group!(benches, bench_intersection, bench_insert_and_union);
criterion_main!(benches);

//! Criterion micro benchmark of the B+-tree index and of shared index probes
//! (batched look-ups, Section 4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareddb_common::{tuple, DataType, QueryId, Value};
use shareddb_storage::table::RowId;
use shareddb_storage::{BTreeIndex, Catalog, IndexProbe, ProbeQuery, TableDef};
use std::sync::Arc;

fn bench_btree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(10);
    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut idx = BTreeIndex::new();
            for i in 0..100_000i64 {
                idx.insert(Value::Int((i * 7919) % 100_000), RowId(i as u64));
            }
            idx.entry_count()
        })
    });
    let mut idx = BTreeIndex::new();
    for i in 0..100_000i64 {
        idx.insert(Value::Int(i), RowId(i as u64));
    }
    group.bench_function("point_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            idx.get(&Value::Int(k)).len()
        })
    });
    group.bench_function("range_1k", |b| {
        b.iter(|| {
            idx.range_rows(
                std::ops::Bound::Included(&Value::Int(40_000)),
                std::ops::Bound::Excluded(&Value::Int(41_000)),
            )
            .len()
        })
    });
    group.finish();
}

fn bench_shared_probe(c: &mut Criterion) {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("T")
                .column("ID", DataType::Int)
                .column("PAYLOAD", DataType::Text)
                .primary_key(&["ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "T",
            (0..50_000i64)
                .map(|i| tuple![i, format!("row{i}")])
                .collect(),
        )
        .unwrap();
    catalog
        .create_index(shareddb_storage::IndexDef {
            name: "T_ID".into(),
            table: "T".into(),
            column: "ID".into(),
        })
        .unwrap();
    let catalog = Arc::new(catalog);
    let probe = IndexProbe::new(catalog.table("T").unwrap(), catalog.oracle());

    let mut group = c.benchmark_group("shared_index_probe");
    group.sample_size(10);
    for &batch in &[1usize, 64, 512] {
        let queries: Vec<ProbeQuery> = (0..batch)
            .map(|q| {
                ProbeQuery::key(
                    QueryId(q as u32 + 1),
                    0,
                    Value::Int((q as i64 * 97) % 50_000),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("lookups", batch), &batch, |b, _| {
            b.iter(|| probe.execute_batch(&queries, &[]).unwrap().tuples.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_btree_ops, bench_shared_probe);
criterion_main!(benches);

//! # shareddb-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (Section 5). Each figure has its own binary in `src/bin/`:
//!
//! | Binary | Paper figure | Content |
//! |--------|--------------|---------|
//! | `fig6_plan` | Figure 6 | the TPC-W global plan and its sharing map |
//! | `fig7_varying_load` | Figure 7 | WIPS vs offered load, three mixes, three systems |
//! | `fig8_scale_cores` | Figure 8 | max WIPS vs number of CPU cores |
//! | `fig9_interactions` | Figure 9 | max WIPS per individual web interaction |
//! | `fig10_heavy_light` | Figure 10 | batch response time vs batch size, light vs heavy query |
//! | `fig11_load_interaction` | Figure 11 | light-query throughput under increasing heavy-query load |
//! | `ablation_overlap` | §3.5 analysis | shared vs per-query work as a function of overlap |
//!
//! All binaries print CSV-like rows to stdout and accept environment
//! variables to scale the run (`TPCW_ITEMS`, `BENCH_SECONDS`, ...); the
//! defaults finish in a few minutes on a laptop. Criterion micro benchmarks
//! (shared operators, ClockScan, B-tree, query-set representations) live in
//! `benches/`.

pub mod conformance;

use shareddb_baseline::EngineProfile;
use shareddb_core::EngineConfig;
use shareddb_storage::Catalog;
use shareddb_tpcw::{build_catalog, BaselineSystem, SharedDbSystem, TpcwDatabase, TpcwScale};
use std::sync::Arc;
use std::time::Duration;

/// Reads a usize parameter from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an f64 parameter from the environment with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The benchmark-wide TPC-W scale (default 2000 items; override with
/// `TPCW_ITEMS`).
pub fn bench_scale() -> TpcwScale {
    TpcwScale::with_items(env_usize("TPCW_ITEMS", 2_000))
}

/// Measurement duration per data point (default 2 s; override with
/// `BENCH_SECONDS`, fractional values allowed).
pub fn bench_duration() -> Duration {
    Duration::from_secs_f64(env_f64("BENCH_SECONDS", 2.0))
}

/// The three systems under test, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// MySQL-like baseline (`EngineProfile::Basic`).
    MySqlLike,
    /// SystemX-like baseline (`EngineProfile::Tuned`).
    SystemXLike,
    /// SharedDB.
    SharedDb,
}

impl SystemUnderTest {
    /// All three systems.
    pub fn all() -> [SystemUnderTest; 3] {
        [
            SystemUnderTest::MySqlLike,
            SystemUnderTest::SystemXLike,
            SystemUnderTest::SharedDb,
        ]
    }

    /// Label used in the output rows.
    pub fn label(&self) -> &'static str {
        match self {
            SystemUnderTest::MySqlLike => "MySQL-like",
            SystemUnderTest::SystemXLike => "SystemX-like",
            SystemUnderTest::SharedDb => "SharedDB",
        }
    }

    /// Instantiates the system over a fresh copy of the TPC-W database with a
    /// given core budget.
    pub fn build(&self, scale: &TpcwScale, cores: usize) -> Box<dyn TpcwDatabase> {
        let catalog: Arc<Catalog> =
            Arc::new(build_catalog(scale).expect("failed to build TPC-W catalog"));
        match self {
            SystemUnderTest::MySqlLike => {
                Box::new(BaselineSystem::new(catalog, EngineProfile::Basic, cores))
            }
            SystemUnderTest::SystemXLike => {
                Box::new(BaselineSystem::new(catalog, EngineProfile::Tuned, cores))
            }
            SystemUnderTest::SharedDb => Box::new(
                SharedDbSystem::new(catalog, EngineConfig::with_cores(cores))
                    .expect("failed to start SharedDB"),
            ),
        }
    }
}

/// Prints a CSV header followed by flushing stdout (figure binaries).
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("SHAREDDB_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_f64("SHAREDDB_DOES_NOT_EXIST_F", 1.5), 1.5);
    }

    #[test]
    fn systems_have_distinct_labels() {
        let labels: Vec<_> = SystemUnderTest::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"SharedDB"));
    }

    #[test]
    fn build_each_system_and_run_a_point_query() {
        let scale = TpcwScale::tiny();
        for system in SystemUnderTest::all() {
            let db = system.build(&scale, 4);
            let rows = db
                .execute(
                    "getItemById",
                    &[shareddb_common::Value::Int(1)],
                    Duration::from_secs(5),
                )
                .unwrap();
            assert_eq!(rows, 1, "{}", system.label());
        }
    }
}

//! SQL conformance corpus runner.
//!
//! Drives the checked-in corpus under `tests/sql_corpus/`: every `*.case`
//! file holds one SQL statement with its parameters and expected result
//! (or expected compile error). All positive cases compile together into
//! **one shared global plan** — exactly how a real workload deploys — and
//! then execute against a fixed, hand-computable dataset; any drift in
//! parser, logical optimisation, plan merging or operator behaviour fails
//! the run. The `sql_conformance` bin wires this into the CI lane, and the
//! workspace integration test `tests/sql_conformance.rs` runs the same
//! corpus under `cargo test`.
//!
//! ## Case file format
//!
//! Line-oriented; `--` starts a comment, blank lines are ignored:
//!
//! ```text
//! -- what the case covers
//! sql: SELECT U_NAME FROM USERS WHERE U_ID = ?
//! params: 7
//! order: exact            -- optional; default "any" (multiset compare)
//! expect:
//! 'user7'
//! ```
//!
//! Rows under `expect:` are comma-separated SQL literals (`1`, `2.5`,
//! `'text'`, `NULL`). Negative cases replace `expect:` with
//! `expect-error: <substring>` and must fail to compile with a message
//! containing the substring.
//!
//! ## The corpus dataset
//!
//! Deterministic and small enough to hand-compute expectations:
//!
//! * `USERS(U_ID pk, U_NAME, U_COUNTRY, U_ACCOUNT)` — 20 rows; `user{i}`,
//!   country cycles `CH, DE, IT`, account `i * 10`.
//! * `ORDERS(O_ID pk, O_U_ID, O_STATUS, O_TOTAL)` — 60 rows; user `o % 20`,
//!   status `OK` when `o % 4 == 0` else `PENDING`, total `(o % 7) as f64`.
//! * `ITEMS(IT_ID pk, IT_SUBJECT, IT_COST)` — 15 rows; subject cycles
//!   `ARTS, SCIENCE, HISTORY`, cost `(t % 5) as f64`.
//! * `TRI_R(A, B)`, `TRI_S(A, C)`, `TRI_T(B, C)` — the triangle-query
//!   fixture: `R` holds all 16 pairs over `0..4`, `S` maps `a → a + 1 mod
//!   4`, `T` maps `b → b + 2 mod 4`.

use shareddb_common::{DataType, Value};
use shareddb_core::{render_explain_text, Engine, EngineConfig};
use shareddb_sql::SqlCompiler;
use shareddb_storage::{Catalog, TableDef};
use std::path::Path;
use std::sync::Arc;

/// One parsed corpus case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Case name (file stem).
    pub name: String,
    /// The statement under test.
    pub sql: String,
    /// Execution parameters.
    pub params: Vec<Value>,
    /// What the case asserts.
    pub expect: Expectation,
}

/// Expected outcome of one case.
#[derive(Debug, Clone)]
pub enum Expectation {
    /// The statement compiles and returns exactly these rows. `exact`
    /// compares in order; otherwise rows compare as a multiset.
    Rows {
        /// Expected rows.
        rows: Vec<Vec<Value>>,
        /// Order-sensitive comparison.
        exact: bool,
    },
    /// The statement fails to compile with a message containing the needle.
    CompileError(String),
}

/// Outcome of a corpus run.
#[derive(Debug, Default)]
pub struct Report {
    /// Names of cases that passed.
    pub passed: Vec<String>,
    /// One line per failed case.
    pub failures: Vec<String>,
}

impl Report {
    /// True when every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Builds the fixed conformance catalog (see the module docs for the data).
pub fn corpus_catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("USERS")
                .column("U_ID", DataType::Int)
                .column("U_NAME", DataType::Text)
                .column("U_COUNTRY", DataType::Text)
                .column("U_ACCOUNT", DataType::Int)
                .primary_key(&["U_ID"]),
        )
        .expect("create USERS");
    catalog
        .create_table(
            TableDef::new("ORDERS")
                .column("O_ID", DataType::Int)
                .column("O_U_ID", DataType::Int)
                .column("O_STATUS", DataType::Text)
                .column("O_TOTAL", DataType::Float)
                .primary_key(&["O_ID"]),
        )
        .expect("create ORDERS");
    catalog
        .create_table(
            TableDef::new("ITEMS")
                .column("IT_ID", DataType::Int)
                .column("IT_SUBJECT", DataType::Text)
                .column("IT_COST", DataType::Float)
                .primary_key(&["IT_ID"]),
        )
        .expect("create ITEMS");
    for (name, cols) in [
        ("TRI_R", ["A", "B"]),
        ("TRI_S", ["A", "C"]),
        ("TRI_T", ["B", "C"]),
    ] {
        catalog
            .create_table(
                TableDef::new(name)
                    .column(cols[0], DataType::Int)
                    .column(cols[1], DataType::Int),
            )
            .expect("create triangle table");
    }
    let countries = ["CH", "DE", "IT"];
    let subjects = ["ARTS", "SCIENCE", "HISTORY"];
    catalog
        .bulk_load(
            "USERS",
            (0..20i64)
                .map(|i| {
                    shareddb_common::tuple![
                        i,
                        format!("user{i}"),
                        countries[(i % 3) as usize],
                        i * 10
                    ]
                })
                .collect(),
        )
        .expect("load USERS");
    catalog
        .bulk_load(
            "ORDERS",
            (0..60i64)
                .map(|o| {
                    shareddb_common::tuple![
                        o,
                        o % 20,
                        if o % 4 == 0 { "OK" } else { "PENDING" },
                        (o % 7) as f64
                    ]
                })
                .collect(),
        )
        .expect("load ORDERS");
    catalog
        .bulk_load(
            "ITEMS",
            (0..15i64)
                .map(|t| shareddb_common::tuple![t, subjects[(t % 3) as usize], (t % 5) as f64])
                .collect(),
        )
        .expect("load ITEMS");
    catalog
        .bulk_load(
            "TRI_R",
            (0..4i64)
                .flat_map(|a| (0..4i64).map(move |b| shareddb_common::tuple![a, b]))
                .collect(),
        )
        .expect("load TRI_R");
    catalog
        .bulk_load(
            "TRI_S",
            (0..4i64)
                .map(|a| shareddb_common::tuple![a, (a + 1) % 4])
                .collect(),
        )
        .expect("load TRI_S");
    catalog
        .bulk_load(
            "TRI_T",
            (0..4i64)
                .map(|b| shareddb_common::tuple![b, (b + 2) % 4])
                .collect(),
        )
        .expect("load TRI_T");
    Arc::new(catalog)
}

/// Parses one `*.case` file.
pub fn parse_case(name: &str, text: &str) -> Result<Case, String> {
    let mut sql = None;
    let mut params = Vec::new();
    let mut exact = false;
    let mut expect: Option<Expectation> = None;
    let mut in_rows = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        let err = |m: String| format!("{name}:{}: {m}", lineno + 1);
        if in_rows {
            let row = parse_values(line).map_err(&err)?;
            match expect.as_mut() {
                Some(Expectation::Rows { rows, .. }) => rows.push(row),
                _ => return Err(err("row outside expect block".into())),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("sql:") {
            sql = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("params:") {
            params = parse_values(rest.trim()).map_err(&err)?;
        } else if let Some(rest) = line.strip_prefix("order:") {
            exact = match rest.trim() {
                "exact" => true,
                "any" => false,
                other => return Err(err(format!("unknown order mode {other}"))),
            };
        } else if let Some(rest) = line.strip_prefix("expect-error:") {
            expect = Some(Expectation::CompileError(rest.trim().to_string()));
        } else if line == "expect:" {
            expect = Some(Expectation::Rows {
                rows: Vec::new(),
                exact: false,
            });
            in_rows = true;
        } else {
            return Err(err(format!("unrecognised line {line:?}")));
        }
    }
    let sql = sql.ok_or_else(|| format!("{name}: missing sql:"))?;
    let mut expect = expect.ok_or_else(|| format!("{name}: missing expect:/expect-error:"))?;
    if let Expectation::Rows { exact: e, .. } = &mut expect {
        *e = exact;
    }
    Ok(Case {
        name: name.to_string(),
        sql,
        params,
        expect,
    })
}

/// Parses a comma-separated list of SQL literals.
fn parse_values(text: &str) -> Result<Vec<Value>, String> {
    let mut out = Vec::new();
    let mut rest = text.trim();
    if rest.is_empty() {
        return Ok(out);
    }
    loop {
        rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix('\'') {
            // Quoted text; '' escapes a quote.
            let mut value = String::new();
            let mut iter = tail.char_indices().peekable();
            let mut after = None;
            while let Some((i, c)) = iter.next() {
                if c == '\'' {
                    if matches!(iter.peek(), Some((_, '\''))) {
                        iter.next();
                        value.push('\'');
                    } else {
                        after = Some(i + 1);
                        break;
                    }
                } else {
                    value.push(c);
                }
            }
            let Some(after) = after else {
                return Err(format!("unterminated string in {text:?}"));
            };
            out.push(Value::text(value));
            rest = &tail[after..];
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            let value = if token.eq_ignore_ascii_case("NULL") {
                Value::Null
            } else if token.eq_ignore_ascii_case("TRUE") {
                Value::Bool(true)
            } else if token.eq_ignore_ascii_case("FALSE") {
                Value::Bool(false)
            } else if token.contains('.') {
                Value::Float(
                    token
                        .parse()
                        .map_err(|_| format!("bad float literal {token:?}"))?,
                )
            } else {
                Value::Int(
                    token
                        .parse()
                        .map_err(|_| format!("bad literal {token:?}"))?,
                )
            };
            out.push(value);
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        match rest.strip_prefix(',') {
            Some(tail) => rest = tail,
            None if rest.is_empty() => return Ok(out),
            None => return Err(format!("expected ',' before {rest:?}")),
        }
    }
}

/// Loads every `*.case` file of `dir`, sorted by file name.
pub fn load_corpus(dir: &Path) -> Result<Vec<Case>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.case files in {}", dir.display()));
    }
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("case")
            .to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        cases.push(parse_case(&name, &text)?);
    }
    Ok(cases)
}

/// Runs the corpus: compiles every positive case into one shared plan,
/// executes it, and checks negative cases for their compile errors.
pub fn run_corpus(dir: &Path) -> Result<Report, String> {
    let cases = load_corpus(dir)?;
    let catalog = corpus_catalog();
    let mut report = Report::default();

    // Negative cases: each must fail to compile (fresh compiler — a bad
    // statement must not poison the shared plan of the others).
    let mut positive = Vec::new();
    for case in cases {
        match &case.expect {
            Expectation::CompileError(needle) => {
                let mut compiler = SqlCompiler::new(&catalog);
                match compiler.add_statement(&case.name, &case.sql) {
                    Err(e) => {
                        let message = e.to_string();
                        if message.contains(needle) {
                            report.passed.push(case.name.clone());
                        } else {
                            report.failures.push(format!(
                                "{}: error {message:?} does not contain {needle:?}",
                                case.name
                            ));
                        }
                    }
                    Ok(()) => report
                        .failures
                        .push(format!("{}: compiled but an error was expected", case.name)),
                }
            }
            Expectation::Rows { .. } => positive.push(case),
        }
    }

    // Positive cases: ONE shared plan for the whole corpus.
    let mut compiler = SqlCompiler::new(&catalog);
    for case in &positive {
        compiler
            .add_statement(&case.name, &case.sql)
            .map_err(|e| format!("{}: failed to compile: {e}", case.name))?;
    }
    let (plan, registry) = compiler.finish();
    registry
        .validate(&plan)
        .map_err(|e| format!("registry validation failed: {e}"))?;
    let engine = Engine::start(catalog, plan, registry, EngineConfig::default())
        .map_err(|e| format!("engine start failed: {e}"))?;
    for case in &positive {
        let Expectation::Rows { rows, exact } = &case.expect else {
            unreachable!()
        };
        match engine.execute_sync(&case.name, &case.params) {
            Err(e) => report
                .failures
                .push(format!("{}: execution failed: {e}", case.name)),
            Ok(outcome) => {
                let mut got: Vec<Vec<Value>> =
                    outcome.rows().iter().map(|r| r.values().to_vec()).collect();
                let mut want = rows.clone();
                if !exact {
                    got.sort_by(|a, b| compare_rows(a, b));
                    want.sort_by(|a, b| compare_rows(a, b));
                }
                if got == want {
                    report.passed.push(case.name.clone());
                } else {
                    report.failures.push(format!(
                        "{}: result drift\n  expected: {want:?}\n  got:      {got:?}",
                        case.name
                    ));
                }
            }
        }
    }
    Ok(report)
}

/// Runs the EXPLAIN golden set: compiles every positive case into the one
/// shared corpus plan, renders each statement's static `EXPLAIN` text (the
/// operator subtree with sharing-set annotations), and compares the
/// concatenation against the checked-in `explain.golden` file in the corpus
/// directory. Any drift in plan merging or sharing-set computation fails the
/// run with the first differing line. Set `UPDATE_EXPLAIN_GOLDEN=1` to
/// regenerate the golden file after an intentional planner change.
pub fn run_explain_golden(dir: &Path) -> Result<Report, String> {
    let cases = load_corpus(dir)?;
    let catalog = corpus_catalog();
    let mut compiler = SqlCompiler::new(&catalog);
    let mut names = Vec::new();
    for case in &cases {
        if matches!(case.expect, Expectation::Rows { .. }) {
            compiler
                .add_statement(&case.name, &case.sql)
                .map_err(|e| format!("{}: failed to compile: {e}", case.name))?;
            names.push(case.name.clone());
        }
    }
    let (plan, registry) = compiler.finish();
    let mut rendered = String::new();
    for name in &names {
        let (index, _) = registry.get(name).map_err(|e| e.to_string())?;
        rendered.push_str(&render_explain_text(&plan, &registry, index, None));
        rendered.push('\n');
    }

    let golden_path = dir.join("explain.golden");
    let mut report = Report::default();
    if std::env::var("UPDATE_EXPLAIN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&golden_path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", golden_path.display()))?;
        report.passed.push(format!(
            "regenerated {} ({} statements)",
            golden_path.display(),
            names.len()
        ));
        return Ok(report);
    }
    let want = std::fs::read_to_string(&golden_path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run with UPDATE_EXPLAIN_GOLDEN=1 to generate it)",
            golden_path.display()
        )
    })?;
    if want == rendered {
        report.passed.extend(names);
    } else {
        let mismatch = want
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (w, g))| w != g)
            .map(|(i, (w, g))| format!("line {}:\n  golden:   {w}\n  rendered: {g}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "length drift: golden {} lines, rendered {} lines",
                    want.lines().count(),
                    rendered.lines().count()
                )
            });
        report.failures.push(format!(
            "EXPLAIN text drifted from {} at {mismatch}\n(set UPDATE_EXPLAIN_GOLDEN=1 to accept)",
            golden_path.display()
        ));
    }
    Ok(report)
}

fn compare_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (va, vb) in a.iter().zip(b.iter()) {
        let ord = va.cmp(vb);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_files_parse() {
        let case = parse_case(
            "t",
            "-- comment\nsql: SELECT * FROM USERS WHERE U_ID = ?\nparams: 7\norder: exact\n\
             expect:\n7, 'user7', 'DE', 70\n",
        )
        .unwrap();
        assert_eq!(case.params, vec![Value::Int(7)]);
        match &case.expect {
            Expectation::Rows { rows, exact } => {
                assert!(*exact);
                assert_eq!(
                    rows[0],
                    vec![
                        Value::Int(7),
                        Value::text("user7"),
                        Value::text("DE"),
                        Value::Int(70)
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let case = parse_case("t", "sql: SELECT\nexpect-error: boom\n").unwrap();
        assert!(matches!(case.expect, Expectation::CompileError(_)));
        assert!(parse_case("t", "sql: SELECT 1\n").is_err());
        assert!(parse_case("t", "nonsense\n").is_err());
    }

    #[test]
    fn literal_lists_parse() {
        assert_eq!(
            parse_values("1, 2.5, 'a,b', NULL, 'O''Brien'").unwrap(),
            vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::text("a,b"),
                Value::Null,
                Value::text("O'Brien"),
            ]
        );
        assert!(parse_values("'unterminated").is_err());
        assert!(parse_values("nope").is_err());
    }
}

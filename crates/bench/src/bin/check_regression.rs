//! CI perf-regression gate: compares a `server_throughput` result JSON
//! against a checked-in baseline of floors and fails (exit 1) on regression.
//!
//! Usage:
//!
//! ```text
//! check_regression --bench BENCH_server_throughput.json --baseline BENCH_baseline.json
//! ```
//!
//! The baseline declares, per `(replicas, clients)` point, a total-throughput
//! floor, a light-p99 ceiling and an error budget, plus a global `slack_pct`
//! that widens every bound (CI runners are noisy; the gate is meant to catch
//! *regressions*, not to benchmark):
//!
//! ```json
//! {
//!   "slack_pct": 30,
//!   "floors": [
//!     {"replicas": 4, "clients": 64,
//!      "min_throughput_per_s": 4000, "max_light_p99_us": 200000,
//!      "max_errors": 0}
//!   ]
//! }
//! ```
//!
//! A floor entry may additionally pin `"scan_segments"` and/or a
//! `"heartbeat"` policy spec (matched verbatim against the point's
//! `heartbeat` string). A top-level `"min_light_p99_improvement_pct"` turns
//! on the adaptive-vs-fixed gate: every sweep point present under both a
//! `fixed:*` and an `adaptive:*` heartbeat must show the adaptive policy
//! improving `server_light_p99_us` by at least that much, without losing
//! more than `"max_throughput_loss_pct"` (default 3) of throughput.
//!
//! A floor entry with no matching point in the bench output is itself a
//! failure — a lane that silently stopped producing the point would
//! otherwise pass forever. The JSON parser below is deliberately minimal
//! (objects, arrays, strings, numbers, booleans, null): the repo has no
//! serde, and both input files are machine-written.

use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn arr(&self, key: &str) -> Option<&[Json]> {
        match self.get(key)? {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn str_of(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'u' => {
                            // Accept \uXXXX (BMP only — enough for these files).
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad unicode escape".to_string())?;
                            self.pos += 4;
                            char::from_u32(hex).unwrap_or('\u{fffd}')
                        }
                        other => *other as char,
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| *b != b'"' && *b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf8".to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected , or }} at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// One evaluated bound, for stdout and the step-summary table.
struct Check {
    label: String,
    metric: &'static str,
    measured: String,
    bound: String,
    pass: bool,
}

fn main() {
    let (bench_path, baseline_path) = parse_args();
    let bench = load(&bench_path);
    let baseline = load(&baseline_path);
    let mut checks: Vec<Check> = Vec::new();

    let slack = baseline.num("slack_pct").unwrap_or(0.0) / 100.0;
    let floors = baseline.arr("floors").unwrap_or_else(|| {
        eprintln!("{baseline_path}: missing \"floors\" array");
        std::process::exit(2);
    });
    let points = bench.arr("points").unwrap_or_else(|| {
        eprintln!("{bench_path}: missing \"points\" array");
        std::process::exit(2);
    });

    let mut failures = 0usize;
    for floor in floors {
        let replicas = floor.num("replicas").unwrap_or(-1.0);
        let clients = floor.num("clients").unwrap_or(-1.0);
        // Optional: a floor may pin a scan-segment sweep point and/or a
        // heartbeat-policy spec; absent, the first matching
        // (replicas, clients) point is checked regardless (old baselines
        // keep working against new output).
        let scan_segments = floor.num("scan_segments");
        let heartbeat = floor.str_of("heartbeat");
        let mut label = format!("replicas={replicas}");
        if let Some(s) = scan_segments {
            label.push_str(&format!(" segments={s}"));
        }
        if let Some(hb) = heartbeat {
            label.push_str(&format!(" heartbeat={hb}"));
        }
        label.push_str(&format!(" clients={clients}"));
        let Some(point) = points.iter().find(|p| {
            p.num("replicas") == Some(replicas)
                && p.num("clients") == Some(clients)
                && scan_segments.is_none_or(|s| p.num("scan_segments").unwrap_or(1.0) == s)
                && heartbeat.is_none_or(|hb| p.str_of("heartbeat").unwrap_or("") == hb)
        }) else {
            println!("FAIL [{label}] point missing from {bench_path}");
            checks.push(Check {
                label: label.clone(),
                metric: "point",
                measured: "missing".into(),
                bound: "present".into(),
                pass: false,
            });
            failures += 1;
            continue;
        };

        if let Some(min_tp) = floor.num("min_throughput_per_s") {
            let bound = min_tp * (1.0 - slack);
            let got = point.num("throughput_per_s").unwrap_or(0.0);
            let pass = got >= bound;
            if pass {
                println!("PASS [{label}] throughput {got:.0}/s >= floor {bound:.0}/s");
            } else {
                println!(
                    "FAIL [{label}] throughput {got:.0}/s below floor {bound:.0}/s \
                     (baseline {min_tp:.0}/s - {:.0}% slack)",
                    slack * 100.0
                );
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "throughput",
                measured: format!("{got:.0}/s"),
                bound: format!(">= {bound:.0}/s"),
                pass,
            });
        }
        if let Some(max_p99) = floor.num("max_light_p99_us") {
            let bound = max_p99 * (1.0 + slack);
            let got = point.num("light_p99_us").unwrap_or(f64::MAX);
            let pass = got <= bound;
            if pass {
                println!("PASS [{label}] light p99 {got:.0}us <= ceiling {bound:.0}us");
            } else {
                println!(
                    "FAIL [{label}] light p99 {got:.0}us above ceiling {bound:.0}us \
                     (baseline {max_p99:.0}us + {:.0}% slack)",
                    slack * 100.0
                );
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "light p99",
                measured: format!("{got:.0}us"),
                bound: format!("<= {bound:.0}us"),
                pass,
            });
        }
        if let Some(max_p99) = floor.num("max_server_light_p99_us") {
            // Server-side end-to-end (Total phase) p99 of the light
            // statement, from the engines' own histograms — unlike the
            // client-side number it excludes bench-thread scheduling noise,
            // so it can carry a tighter ceiling.
            let bound = max_p99 * (1.0 + slack);
            let got = point.num("server_light_p99_us").unwrap_or(f64::MAX);
            let pass = got <= bound;
            if pass {
                println!("PASS [{label}] server light p99 {got:.0}us <= ceiling {bound:.0}us");
            } else {
                println!(
                    "FAIL [{label}] server light p99 {got:.0}us above ceiling {bound:.0}us \
                     (baseline {max_p99:.0}us + {:.0}% slack)",
                    slack * 100.0
                );
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "server light p99",
                measured: format!("{got:.0}us"),
                bound: format!("<= {bound:.0}us"),
                pass,
            });
        }
        if let Some(min_updates) = floor.num("min_updates_ok") {
            let bound = min_updates * (1.0 - slack);
            let got = point.num("updates_ok").unwrap_or(0.0);
            let pass = got >= bound;
            if pass {
                println!("PASS [{label}] {got:.0} concurrent updates >= floor {bound:.0}");
            } else {
                println!(
                    "FAIL [{label}] only {got:.0} concurrent updates ran, floor {bound:.0} \
                     (the write-load soak exercised nothing)"
                );
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "updates ok",
                measured: format!("{got:.0}"),
                bound: format!(">= {bound:.0}"),
                pass,
            });
        }
        if let Some(max_errors) = floor.num("max_errors") {
            let got = point.num("errors").unwrap_or(f64::MAX);
            let pass = got <= max_errors;
            if pass {
                println!("PASS [{label}] {got:.0} errors <= budget {max_errors:.0}");
            } else {
                println!("FAIL [{label}] {got:.0} errors > budget {max_errors:.0}");
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "errors",
                measured: format!("{got:.0}"),
                bound: format!("<= {max_errors:.0}"),
                pass,
            });
        }
    }

    // Adaptive-vs-fixed heartbeat comparison *within this run*: when the
    // baseline sets `min_light_p99_improvement_pct`, every sweep point that
    // exists under both a `fixed:*` and an `adaptive:*` heartbeat must show
    // the adaptive policy cutting the server-side light p99 by at least that
    // much — and (guarded by `max_throughput_loss_pct`, default 3) without
    // giving up more than a sliver of throughput. Both points come from the
    // same process run on the same machine, so `slack_pct` (which absorbs
    // runner-to-runner variance) deliberately does NOT widen these bounds —
    // it would defeat the improvement requirement; pick the margin via
    // `min_light_p99_improvement_pct` itself.
    if let Some(min_improvement) = baseline.num("min_light_p99_improvement_pct") {
        let max_loss = baseline.num("max_throughput_loss_pct").unwrap_or(3.0);
        let mut pairs = 0usize;
        for fixed in points {
            let Some(hb_fixed) = fixed.str_of("heartbeat") else {
                continue;
            };
            if !hb_fixed.starts_with("fixed:") {
                continue;
            }
            let Some(adaptive) = points.iter().find(|p| {
                p.str_of("heartbeat")
                    .is_some_and(|h| h.starts_with("adaptive:"))
                    && p.num("replicas") == fixed.num("replicas")
                    && p.num("scan_segments") == fixed.num("scan_segments")
                    && p.num("clients") == fixed.num("clients")
            }) else {
                continue;
            };
            pairs += 1;
            let label = format!(
                "replicas={} clients={} {} vs {}",
                fixed.num("replicas").unwrap_or(-1.0),
                fixed.num("clients").unwrap_or(-1.0),
                adaptive.str_of("heartbeat").unwrap_or("?"),
                hb_fixed,
            );
            let fixed_p99 = fixed.num("server_light_p99_us").unwrap_or(0.0);
            let adaptive_p99 = adaptive.num("server_light_p99_us").unwrap_or(f64::MAX);
            let bound = fixed_p99 * (1.0 - min_improvement / 100.0);
            let delta_pct = if fixed_p99 > 0.0 {
                (fixed_p99 - adaptive_p99) / fixed_p99 * 100.0
            } else {
                0.0
            };
            let pass = adaptive_p99 <= bound;
            if pass {
                println!(
                    "PASS [{label}] adaptive server light p99 {adaptive_p99:.0}us <= \
                     {bound:.0}us ({delta_pct:+.1}% vs fixed {fixed_p99:.0}us)"
                );
            } else {
                println!(
                    "FAIL [{label}] adaptive server light p99 {adaptive_p99:.0}us above \
                     {bound:.0}us — needs >= {min_improvement:.0}% improvement over fixed \
                     {fixed_p99:.0}us, measured {delta_pct:+.1}%"
                );
                failures += 1;
            }
            checks.push(Check {
                label: label.clone(),
                metric: "adaptive p99 delta",
                measured: format!("{adaptive_p99:.0}us ({delta_pct:+.1}%)"),
                bound: format!("<= {bound:.0}us"),
                pass,
            });
            let fixed_tp = fixed.num("throughput_per_s").unwrap_or(0.0);
            let adaptive_tp = adaptive.num("throughput_per_s").unwrap_or(0.0);
            let tp_bound = fixed_tp * (1.0 - max_loss / 100.0);
            let tp_pass = adaptive_tp >= tp_bound;
            if tp_pass {
                println!(
                    "PASS [{label}] adaptive throughput {adaptive_tp:.0}/s >= {tp_bound:.0}/s \
                     (fixed {fixed_tp:.0}/s, loss budget {max_loss:.0}%)"
                );
            } else {
                println!(
                    "FAIL [{label}] adaptive throughput {adaptive_tp:.0}/s below {tp_bound:.0}/s \
                     — gave up more than {max_loss:.0}% vs fixed {fixed_tp:.0}/s"
                );
                failures += 1;
            }
            checks.push(Check {
                label,
                metric: "adaptive throughput",
                measured: format!("{adaptive_tp:.0}/s"),
                bound: format!(">= {tp_bound:.0}/s"),
                pass: tp_pass,
            });
        }
        if pairs == 0 {
            // A lane that stopped sweeping both policies must not pass silently.
            println!(
                "FAIL [adaptive-vs-fixed] no (fixed, adaptive) heartbeat point pair in \
                 {bench_path}"
            );
            checks.push(Check {
                label: "adaptive-vs-fixed".into(),
                metric: "pair",
                measured: "missing".into(),
                bound: "present".into(),
                pass: false,
            });
            failures += 1;
        }
    }
    write_step_summary(&bench_path, slack, &checks, failures);
    if failures > 0 {
        eprintln!("{failures} regression check(s) failed");
        std::process::exit(1);
    }
    println!("all regression checks passed");
}

/// Appends a measured-vs-floor markdown table to `$GITHUB_STEP_SUMMARY`, so
/// perf-gate results are readable from the job page without downloading the
/// bench artifact. A no-op outside GitHub Actions.
fn write_step_summary(bench_path: &str, slack: f64, checks: &[Check], failures: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut summary = String::new();
    let verdict = if failures == 0 {
        "all checks passed"
    } else {
        "REGRESSION"
    };
    summary.push_str(&format!(
        "### Perf gate: `{bench_path}` — {verdict}\n\n\
         Bounds include {:.0}% slack over the committed baseline.\n\n\
         | Point | Metric | Measured | Bound | Status |\n\
         |---|---|---|---|---|\n",
        slack * 100.0
    ));
    for check in checks {
        summary.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            check.label,
            check.metric,
            check.measured,
            check.bound,
            if check.pass { "✅ pass" } else { "❌ FAIL" }
        ));
    }
    summary.push('\n');
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(e) = file.write_all(summary.as_bytes()) {
                eprintln!("cannot write step summary {path}: {e}");
            }
        }
        Err(e) => eprintln!("cannot open step summary {path}: {e}"),
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    Parser::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn parse_args() -> (String, String) {
    let mut bench = "BENCH_server_throughput.json".to_string();
    let mut baseline = "crates/bench/baselines/BENCH_baseline.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => bench = args.next().unwrap_or_else(|| usage("--bench needs PATH")),
            "--baseline" => {
                baseline = args
                    .next()
                    .unwrap_or_else(|| usage("--baseline needs PATH"))
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (bench, baseline)
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: check_regression [--bench PATH] [--baseline PATH]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_bench_shape() {
        let json = Parser::parse(
            r#"{"bench": "x", "points": [{"replicas": 4, "clients": 64,
                "throughput_per_s": 1234.5, "errors": 0, "nested": [1, -2.5e1],
                "flag": true, "nothing": null, "esc": "a\"b\nA"}]}"#,
        )
        .unwrap();
        let points = json.arr("points").unwrap();
        assert_eq!(points[0].num("replicas"), Some(4.0));
        assert_eq!(points[0].num("throughput_per_s"), Some(1234.5));
        assert_eq!(
            points[0].get("esc"),
            Some(&Json::Str("a\"b\nA".to_string()))
        );
        assert_eq!(
            points[0].get("nested"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0)]))
        );
        assert!(Parser::parse("{\"a\": }").is_err());
        assert!(Parser::parse("[1, 2] trailing").is_err());
    }
}

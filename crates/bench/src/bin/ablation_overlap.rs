//! Ablation supporting the Section 3.5 analysis: shared execution saves work
//! when `f(o) < Σ f(n_i)`, where `o` is the size of the union of the inputs
//! of all concurrent queries and `n_i` the input of query i.
//!
//! The harness runs a batch of concurrent join queries against SharedDB and
//! against the per-query baseline while varying the *overlap* of their
//! predicates, and reports the batch completion time of both. With low
//! overlap (disjoint predicates) sharing wastes work; with high overlap (all
//! queries touch the same hot range) SharedDB's bounded computation wins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::{bench_scale, env_usize, print_header, SystemUnderTest};
use shareddb_common::Value;
use shareddb_tpcw::SUBJECTS;
use std::time::{Duration, Instant};

fn main() {
    let scale = bench_scale();
    let cores = env_usize("ABL_CORES", 24);
    let batch = env_usize("ABL_BATCH", 200);
    let submitters = env_usize("ABL_SUBMITTERS", 16);

    eprintln!("# ablation_overlap: items={}, batch={batch}", scale.items);
    print_header(&["overlap", "system", "batch_size", "batch_time_ms"]);

    // Overlap levels: fraction of queries that use the same (hot) subject.
    for &overlap_pct in &[0usize, 25, 50, 75, 100] {
        for system in [SystemUnderTest::SystemXLike, SystemUnderTest::SharedDb] {
            let db = system.build(&scale, cores);
            let started = Instant::now();
            let counter = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let db = db.as_ref();
                let counter = &counter;
                for t in 0..submitters {
                    let scale = scale.clone();
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(900 + t as u64);
                        loop {
                            let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= batch {
                                break;
                            }
                            // With probability `overlap`, use the hot subject;
                            // otherwise spread across the other subjects.
                            let subject = if rng.gen_range(0..100) < overlap_pct {
                                SUBJECTS[0]
                            } else {
                                SUBJECTS[1 + rng.gen_range(0..SUBJECTS.len() - 1)]
                            };
                            let params = [
                                Value::text(subject),
                                Value::Int((scale.orders as i64 - 1_000).max(0)),
                            ];
                            let _ = db.execute("getBestSellers", &params, Duration::from_secs(60));
                        }
                    });
                }
            });
            println!(
                "{},{},{},{:.1}",
                overlap_pct,
                system.label(),
                batch,
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
    }
}

//! Figure 7: throughput (successful web interactions per second) under
//! varying offered load, for the Browsing, Shopping and Ordering mixes and
//! the three systems (MySQL-like, SystemX-like, SharedDB).
//!
//! Output: CSV rows `mix,system,emulated_browsers,offered_wips,wips,...`.
//! The paper sweeps 1000–14000 emulated browsers with a 7 s think time on a
//! 48-core server; the reproduction sweeps a scaled-down browser count with a
//! scaled-down think time so that the offered-load range brackets the
//! capacity of a laptop-class machine. Override with `FIG7_EBS`
//! (comma-separated), `TPCW_ITEMS`, `BENCH_SECONDS`, `FIG7_CORES`.

use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header, SystemUnderTest};
use shareddb_tpcw::{run_workload, DriverConfig, Mix};
use std::time::Duration;

fn eb_points() -> Vec<usize> {
    match std::env::var("FIG7_EBS") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![50, 100, 200, 400, 800, 1600, 3200],
    }
}

fn main() {
    let scale = bench_scale();
    let duration = bench_duration();
    let cores = env_usize("FIG7_CORES", 24);
    let think = Duration::from_millis(env_usize("FIG7_THINK_MS", 1_000) as u64);

    eprintln!(
        "# fig7: items={}, duration={:?}, cores={}, think={:?}",
        scale.items, duration, cores, think
    );
    print_header(&[
        "mix",
        "system",
        "emulated_browsers",
        "offered_wips",
        "wips",
        "attempted",
        "successful",
        "timed_out",
        "failed",
        "mean_latency_ms",
    ]);

    for mix in [Mix::Browsing, Mix::Ordering, Mix::Shopping] {
        for system in SystemUnderTest::all() {
            let db = system.build(&scale, cores);
            for &ebs in &eb_points() {
                let config = DriverConfig {
                    mix,
                    emulated_browsers: ebs,
                    think_time: think,
                    duration,
                    client_threads: 24,
                    time_limit_scale: 1.0,
                    seed: 7,
                };
                let report = run_workload(db.as_ref(), &scale, &config);
                println!(
                    "{},{},{},{:.1},{:.1},{},{},{},{},{:.2}",
                    mix.name(),
                    system.label(),
                    ebs,
                    report.offered_rate,
                    report.wips,
                    report.attempted,
                    report.successful,
                    report.timed_out,
                    report.failed,
                    report.mean_latency.as_secs_f64() * 1e3,
                );
            }
        }
    }
}

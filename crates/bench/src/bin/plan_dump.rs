//! Annotated global-plan dump: renders every TPC-W statement type's view of
//! the shared plan — the operator subtree with per-node **sharing sets** —
//! as text, and optionally the whole plan as a Graphviz digraph.
//!
//! SharedDB has no per-query plans, so this is what EXPLAIN means here: the
//! statement's slice of the one always-on plan, annotated with who else runs
//! through each operator. With `--analyze` a short heavy/light/update mix is
//! driven through an in-process engine first and the dump folds in live
//! runtime counters plus the per-statement-type cost attribution — the same
//! output a client gets from `EXPLAIN ANALYZE <stmt>` over the wire.
//!
//! Arguments: `--statement NAME` (one statement instead of all),
//! `--analyze [COUNT]` via `PLAN_DUMP_STATEMENTS` (mix size, default 64),
//! `--dot` (emit the digraph instead of text; combine with `--statement` to
//! highlight that statement's subtree). Environment: `TPCW_ITEMS` (scale).

use shareddb_bench::{bench_scale, env_usize};
use shareddb_common::Value;
use shareddb_core::{render_dot, render_explain_text, AnalyzeData, Engine, EngineConfig};
use shareddb_tpcw::schema::SUBJECTS;
use shareddb_tpcw::{build_catalog, build_shared_plan};
use std::sync::Arc;

fn main() {
    let args = parse_args();
    let scale = bench_scale();
    let items = scale.items as i64;
    let catalog = Arc::new(build_catalog(&scale).expect("build TPC-W catalog"));
    let (plan, registry) = build_shared_plan(&catalog).expect("build global plan");

    let statement_index = args.statement.as_deref().map(|name| {
        registry
            .get(name)
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
            .0
    });

    // --analyze: drive a deterministic mix through an in-process engine so
    // the dump carries live counters and cost attribution.
    let analyze = if args.analyze {
        let mut engine = Engine::start(
            Arc::clone(&catalog),
            plan.clone(),
            registry.clone(),
            EngineConfig::default(),
        )
        .expect("start engine");
        for i in 0..args.statements {
            let outcome = match i % 8 {
                7 => engine.execute_sync(
                    "getBestSellers",
                    &[Value::text(SUBJECTS[i % SUBJECTS.len()]), Value::Int(0)],
                ),
                6 => engine.execute_sync(
                    "addOrderLine",
                    &[
                        Value::Int(70_000_000 + i as i64),
                        Value::Int(i as i64 % 16),
                        Value::Int(i as i64 % items.max(1)),
                        Value::Int(1),
                    ],
                ),
                _ => engine.execute_sync("getItemById", &[Value::Int(i as i64 * 7 % items.max(1))]),
            };
            if let Err(e) = outcome {
                eprintln!("statement {i} failed: {e}");
            }
        }
        let data = AnalyzeData {
            operators: engine.operator_stats(),
            attribution: engine.attribution_stats(),
            wall: engine.stats_wall(),
        };
        engine.shutdown();
        Some(data)
    } else {
        None
    };

    if args.dot {
        print!("{}", render_dot(&plan, &registry, statement_index));
        return;
    }
    match statement_index {
        Some(index) => {
            print!(
                "{}",
                render_explain_text(&plan, &registry, index, analyze.as_ref())
            );
        }
        None => {
            println!(
                "== global plan: {} operators, {} statement types ==",
                plan.len(),
                registry.len()
            );
            for index in 0..registry.len() {
                println!();
                print!(
                    "{}",
                    render_explain_text(&plan, &registry, index, analyze.as_ref())
                );
            }
        }
    }
}

struct Args {
    statement: Option<String>,
    analyze: bool,
    dot: bool,
    statements: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        statement: None,
        analyze: false,
        dot: false,
        statements: env_usize("PLAN_DUMP_STATEMENTS", 64),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--statement" => {
                parsed.statement = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--statement needs NAME")),
                )
            }
            "--analyze" => parsed.analyze = true,
            "--dot" => parsed.dot = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    parsed
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: plan_dump [--statement NAME] [--analyze] [--dot]");
    std::process::exit(2);
}

//! Figure 8: maximum throughput as a function of the number of CPU cores,
//! for all three mixes and all three systems.
//!
//! The paper varies the server's cores from 1 to 48 with the `maxcpus` kernel
//! parameter; SharedDB uses at most 32 (one per operator). The reproduction
//! varies the engine's core budget (SharedDB) / worker count (baselines) and
//! drives each configuration at a high offered load to measure the maximum
//! sustainable WIPS. Override points with `FIG8_CORES` (comma-separated).

use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header, SystemUnderTest};
use shareddb_tpcw::{run_workload, DriverConfig, Mix};
use std::time::Duration;

fn core_points() -> Vec<usize> {
    match std::env::var("FIG8_CORES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 4, 8, 16, 24],
    }
}

fn main() {
    let scale = bench_scale();
    let duration = bench_duration();
    // Saturating load: enough emulated browsers that every configuration is
    // driven at (or beyond) its capacity.
    let ebs = env_usize("FIG8_EBS", 2_000);
    let think = Duration::from_millis(env_usize("FIG8_THINK_MS", 1_000) as u64);

    eprintln!(
        "# fig8: items={}, duration={:?}, saturating ebs={}",
        scale.items, duration, ebs
    );
    print_header(&["mix", "system", "cores", "max_wips", "timed_out", "failed"]);

    for mix in [Mix::Browsing, Mix::Ordering, Mix::Shopping] {
        for system in SystemUnderTest::all() {
            for &cores in &core_points() {
                let db = system.build(&scale, cores);
                let config = DriverConfig {
                    mix,
                    emulated_browsers: ebs,
                    think_time: think,
                    duration,
                    client_threads: 24,
                    time_limit_scale: 1.0,
                    seed: 8,
                };
                let report = run_workload(db.as_ref(), &scale, &config);
                println!(
                    "{},{},{},{:.1},{},{}",
                    mix.name(),
                    system.label(),
                    cores,
                    report.wips,
                    report.timed_out,
                    report.failed,
                );
            }
        }
    }
}

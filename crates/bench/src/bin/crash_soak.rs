//! Crash-consistency soak: SIGKILL a durable server mid-write, restart it,
//! and verify that no acknowledged write was lost and no partial batch was
//! replayed.
//!
//! The binary re-executes itself as the server child (`--serve`), so one
//! process tree exercises the whole durability path:
//!
//! 1. The parent spawns `crash_soak --serve --data-dir DIR --port-file PF`.
//!    The child builds the SOAK schema, starts a durable
//!    [`shareddb_server::Server`] (`data_dir`, `SyncPolicy::Always`), writes
//!    its bound address to the port file, and parks.
//! 2. The parent first verifies the *recovered* state against its own ledger
//!    of previous cycles: every acknowledged insert must be present with its
//!    deterministic amount (zero acked-write loss), and every recovered row
//!    must come from some attempted insert (a torn tail may drop unacked
//!    writes, but never invent or half-apply one).
//! 3. Writer threads hammer inserts over the wire; after a random delay the
//!    parent delivers SIGKILL — mid-batch, mid-fsync, wherever the child
//!    happens to be. Inserts acknowledged before the kill join the ledger.
//! 4. Repeat. Under `SyncPolicy::Always` the WAL fsyncs before the engine
//!    acks, so the invariant is exact, not probabilistic.
//!
//! Arguments / environment: `--cycles N` (kill/restart cycles, default 20,
//! env `SOAK_CYCLES`), `--json PATH` (report, default `BENCH_crash_soak.json`,
//! env `SOAK_JSON`), `SOAK_WRITERS` (concurrent writer connections, default
//! 4). Exit code 0 = all invariants held in every cycle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::env_usize;
use shareddb_client::Connection;
use shareddb_common::{tuple, DataType, Value};
use shareddb_server::{Server, ServerConfig};
use shareddb_storage::{Catalog, SyncPolicy, TableDef};
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deterministic per-row amount so the verifier can recompute what every
/// recovered row must contain.
fn amount_for(id: i64) -> f64 {
    (id % 97) as f64 * 0.5
}

fn workload() -> Vec<(&'static str, &'static str)> {
    vec![
        ("addItem", "INSERT INTO SOAK VALUES (?, ?, ?)"),
        ("getItem", "SELECT * FROM SOAK WHERE S_ID = ?"),
        ("getAll", "SELECT * FROM SOAK WHERE S_ID >= ?"),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--serve") {
        serve(&args);
        return;
    }

    let cycles = flag_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_usize("SOAK_CYCLES", 20));
    let json_path = flag_value(&args, "--json")
        .unwrap_or_else(|| std::env::var("SOAK_JSON").unwrap_or("BENCH_crash_soak.json".into()));
    let writers = env_usize("SOAK_WRITERS", 4);

    let dir = std::env::temp_dir().join(format!("shareddb-crash-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");
    let data_dir = dir.join("data");
    let port_file = dir.join("port");

    let mut ledger = Ledger::default();
    let mut cycle_reports = Vec::new();
    let mut failures = Vec::new();

    for cycle in 0..cycles {
        let report = run_cycle(
            cycle,
            cycles,
            writers,
            &data_dir,
            &port_file,
            &mut ledger,
            &mut failures,
        );
        eprintln!(
            "cycle {:>3}: recovered {} rows ({} replayed batches, torn_tail={}), \
             acked {:+}, attempted {:+}{}",
            cycle,
            report.recovered_rows,
            report.replayed_batches,
            report.torn_tail,
            report.acked_this_cycle,
            report.attempted_this_cycle,
            if report.ok {
                ""
            } else {
                "  INVARIANT VIOLATED"
            },
        );
        cycle_reports.push(report);
    }

    let pass = failures.is_empty();
    write_report(&json_path, cycles, writers, &ledger, &cycle_reports, pass);
    eprintln!(
        "crash_soak: {cycles} cycles, {} attempted, {} acked, {}",
        ledger.attempted.len(),
        ledger.acked.len(),
        if pass { "PASS" } else { "FAIL" },
    );
    for f in &failures {
        eprintln!("  {f}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    std::process::exit(i32::from(!pass));
}

/// Inserts the parent has attempted / seen acknowledged, across all cycles.
#[derive(Default)]
struct Ledger {
    attempted: HashSet<i64>,
    acked: HashSet<i64>,
}

struct CycleReport {
    cycle: usize,
    recovered_rows: usize,
    checkpoint_rows: u64,
    replayed_batches: u64,
    torn_tail: bool,
    acked_this_cycle: usize,
    attempted_this_cycle: usize,
    ok: bool,
}

fn run_cycle(
    cycle: usize,
    cycles: usize,
    writers: usize,
    data_dir: &Path,
    port_file: &Path,
    ledger: &mut Ledger,
    failures: &mut Vec<String>,
) -> CycleReport {
    let mut child = spawn_server(data_dir, port_file);
    let addr = wait_for_addr(port_file, &mut child);

    // Scrape what startup recovery did before any new writes land.
    let recovery = scrape_recovery_metrics(addr);

    // Invariant check against the recovered state.
    let mut ok = true;
    match verify_state(addr, ledger) {
        Ok(recovered) => {
            if recovered.missing_acked > 0 {
                ok = false;
                failures.push(format!(
                    "cycle {cycle}: {} acked inserts lost after restart",
                    recovered.missing_acked
                ));
            }
            if recovered.phantom_rows > 0 {
                ok = false;
                failures.push(format!(
                    "cycle {cycle}: {} recovered rows never attempted (partial batch?)",
                    recovered.phantom_rows
                ));
            }
            if recovered.corrupt_rows > 0 {
                ok = false;
                failures.push(format!(
                    "cycle {cycle}: {} recovered rows with wrong amount",
                    recovered.corrupt_rows
                ));
            }

            let (acked, attempted) = write_phase(cycle, cycles, writers, addr, ledger, &mut child);
            CycleReport {
                cycle,
                recovered_rows: recovered.rows,
                checkpoint_rows: recovery.checkpoint_rows,
                replayed_batches: recovery.replayed_batches,
                torn_tail: recovery.torn_tail,
                acked_this_cycle: acked,
                attempted_this_cycle: attempted,
                ok,
            }
        }
        Err(e) => {
            failures.push(format!("cycle {cycle}: verification failed: {e}"));
            let _ = child.kill();
            let _ = child.wait();
            CycleReport {
                cycle,
                recovered_rows: 0,
                checkpoint_rows: recovery.checkpoint_rows,
                replayed_batches: recovery.replayed_batches,
                torn_tail: recovery.torn_tail,
                acked_this_cycle: 0,
                attempted_this_cycle: 0,
                ok: false,
            }
        }
    }
}

/// Runs the writer threads against the live child, kills it after a random
/// delay (SIGKILL — no destructors, no flush), and folds this cycle's
/// attempted/acked ids into the ledger. The last cycle shuts down without a
/// kill delay so the final verification exercises a clean tail too.
fn write_phase(
    cycle: usize,
    cycles: usize,
    writers: usize,
    addr: SocketAddr,
    ledger: &mut Ledger,
    child: &mut Child,
) -> (usize, usize) {
    let attempted = Arc::new(Mutex::new(Vec::<i64>::new()));
    let acked = Arc::new(Mutex::new(Vec::<i64>::new()));
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ cycle as u64);
    // Kill mid-write: sooner in some cycles (torn small logs), later in
    // others (bigger replay tails).
    let kill_after = Duration::from_millis(rng.gen_range(40..400));
    let last_cycle = cycle + 1 == cycles;

    std::thread::scope(|scope| {
        for writer in 0..writers {
            let attempted = Arc::clone(&attempted);
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                let Ok(mut conn) = Connection::connect(addr) else {
                    return;
                };
                let Ok(prepared) = conn.prepare("addItem") else {
                    return;
                };
                for seq in 0.. {
                    let id = cycle as i64 * 1_000_000 + writer as i64 * 100_000 + seq;
                    let params = vec![
                        Value::Int(id),
                        Value::text(format!("c{cycle}w{writer}")),
                        Value::Float(amount_for(id)),
                    ];
                    attempted.lock().unwrap_or_else(|e| e.into_inner()).push(id);
                    match conn.execute(&prepared, &params) {
                        Ok(_) => acked.lock().unwrap_or_else(|e| e.into_inner()).push(id),
                        // Retryable = rejected before admission; not durable,
                        // keep going. Anything else means the kill landed.
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        std::thread::sleep(kill_after);
        // SIGKILL on Unix: the child gets no chance to flush anything.
        let _ = child.kill();
        let _ = child.wait();
        // Writer threads unblock with connection errors and exit the scope.
    });

    let attempted = attempted.lock().unwrap_or_else(|e| e.into_inner());
    let acked = acked.lock().unwrap_or_else(|e| e.into_inner());
    ledger.attempted.extend(attempted.iter().copied());
    ledger.acked.extend(acked.iter().copied());
    let _ = last_cycle;
    (acked.len(), attempted.len())
}

struct RecoveredState {
    rows: usize,
    missing_acked: usize,
    phantom_rows: usize,
    corrupt_rows: usize,
}

/// Reads the whole SOAK table through the re-warmed global plan and checks
/// it against the parent's ledger.
fn verify_state(addr: SocketAddr, ledger: &Ledger) -> Result<RecoveredState, String> {
    let mut conn = Connection::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let get_all = conn
        .prepare("getAll")
        .map_err(|e| format!("prepare: {e}"))?;
    let outcome = conn
        .execute(&get_all, &[Value::Int(0)])
        .map_err(|e| format!("scan: {e}"))?;
    let mut present = HashSet::new();
    let mut phantom_rows = 0usize;
    let mut corrupt_rows = 0usize;
    for row in outcome.rows() {
        let Value::Int(id) = row[0] else {
            return Err(format!("non-int id in {row:?}"));
        };
        present.insert(id);
        if !ledger.attempted.contains(&id) {
            phantom_rows += 1;
        }
        if row[2] != Value::Float(amount_for(id)) {
            corrupt_rows += 1;
        }
    }
    let missing_acked = ledger
        .acked
        .iter()
        .filter(|id| !present.contains(id))
        .count();
    // Spot-check the point look-up path too (index probe, not the scan).
    if let Some(&id) = ledger.acked.iter().next() {
        let get_item = conn
            .prepare("getItem")
            .map_err(|e| format!("prepare: {e}"))?;
        let point = conn
            .execute(&get_item, &[Value::Int(id)])
            .map_err(|e| format!("probe: {e}"))?;
        if point.rows().len() != 1 {
            return Err(format!(
                "point look-up of acked id {id} returned {} rows",
                point.rows().len()
            ));
        }
    }
    let _ = conn.close();
    Ok(RecoveredState {
        rows: present.len(),
        missing_acked,
        phantom_rows,
        corrupt_rows,
    })
}

/// The child half: build the schema, start a durable server, publish the
/// port, park forever (the parent kills us).
fn serve(args: &[String]) {
    let data_dir = flag_value(args, "--data-dir").expect("--data-dir required");
    let port_file = flag_value(args, "--port-file").expect("--port-file required");
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("SOAK")
                .column("S_ID", DataType::Int)
                .column("S_TAG", DataType::Text)
                .column("S_AMOUNT", DataType::Float)
                .primary_key(&["S_ID"]),
        )
        .expect("schema");
    // A seed row proves checkpoints cover unlogged bulk loads across kills.
    if !Path::new(&data_dir)
        .join(shareddb_storage::CHECKPOINT_FILE)
        .exists()
    {
        catalog
            .bulk_load("SOAK", vec![tuple![-1i64, "seed", amount_for(-1)]])
            .expect("seed");
    }
    let server = Server::start_sql(
        Arc::new(catalog),
        &workload(),
        Default::default(),
        ServerConfig {
            data_dir: Some(PathBuf::from(&data_dir)),
            wal_sync: SyncPolicy::Always,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let tmp = format!("{port_file}.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("port file");
    std::fs::rename(&tmp, &port_file).expect("port file rename");
    loop {
        std::thread::park();
    }
}

fn spawn_server(data_dir: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    let exe = std::env::current_exe().expect("current_exe");
    Command::new(exe)
        .arg("--serve")
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server child")
}

fn wait_for_addr(port_file: &Path, child: &mut Child) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server child exited during startup: {status}");
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("server child did not publish a port within 30s");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[derive(Default)]
struct RecoveryMetrics {
    checkpoint_rows: u64,
    replayed_batches: u64,
    torn_tail: bool,
}

/// Pulls the `shareddb_recovery_*` gauges off the child's `/metrics`
/// endpoint — the same exposition an operator would scrape.
fn scrape_recovery_metrics(addr: SocketAddr) -> RecoveryMetrics {
    let Some(body) = scrape(addr) else {
        return RecoveryMetrics::default();
    };
    let mut values = HashMap::new();
    for line in body.lines() {
        if let Some((name, value)) = line.split_once(' ') {
            if name.starts_with("shareddb_recovery_") {
                values.insert(name.to_string(), value.parse::<f64>().unwrap_or(0.0));
            }
        }
    }
    RecoveryMetrics {
        checkpoint_rows: values
            .get("shareddb_recovery_checkpoint_rows")
            .copied()
            .unwrap_or(0.0) as u64,
        replayed_batches: values
            .get("shareddb_recovery_replayed_batches")
            .copied()
            .unwrap_or(0.0) as u64,
        torn_tail: values.get("shareddb_recovery_torn_tail").copied() == Some(1.0),
    }
}

fn scrape(addr: SocketAddr) -> Option<String> {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n")
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn write_report(
    path: &str,
    cycles: usize,
    writers: usize,
    ledger: &Ledger,
    reports: &[CycleReport],
    pass: bool,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"crash_soak\",\n");
    out.push_str(&format!("  \"cycles\": {cycles},\n"));
    out.push_str(&format!("  \"writers\": {writers},\n"));
    out.push_str("  \"sync_policy\": \"always\",\n");
    out.push_str(&format!("  \"attempted\": {},\n", ledger.attempted.len()));
    out.push_str(&format!("  \"acked\": {},\n", ledger.acked.len()));
    out.push_str(&format!("  \"pass\": {pass},\n"));
    out.push_str("  \"per_cycle\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cycle\": {}, \"recovered_rows\": {}, \"checkpoint_rows\": {}, \
             \"replayed_batches\": {}, \"torn_tail\": {}, \"acked\": {}, \
             \"attempted\": {}, \"ok\": {}}}{}\n",
            r.cycle,
            r.recovered_rows,
            r.checkpoint_rows,
            r.replayed_batches,
            r.torn_tail,
            r.acked_this_cycle,
            r.attempted_this_cycle,
            r.ok,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("failed to write {path}: {e}");
    }
}

//! Batch-lifecycle trace dump: runs a short TPC-W mix against an in-process
//! cluster and prints each replica's retained trace journal with operator
//! and statement names resolved against the global plan.
//!
//! The journal is the drill-down companion to the `/metrics` histograms:
//! percentiles say *how long* the execute phase took, the trace says *what a
//! particular batch did* — how many statements it admitted, which shared
//! operators actually fired and for how long, and where each query's rows
//! were routed (the Γ step). The ring is bounded (`trace_capacity` events),
//! so this is safe to leave on in production-shaped runs.
//!
//! Arguments: `--replicas N` (default 2), `--capacity EVENTS` (journal ring
//! size, default 512), `--statements COUNT` (executions to drive, default
//! 64). Environment: `TPCW_ITEMS` (scale, default 2000).

use shareddb_bench::{bench_scale, env_usize};
use shareddb_cluster::{ClusterConfig, ClusterEngine};
use shareddb_common::Value;
use shareddb_core::{EngineConfig, Phase, TraceEvent};
use shareddb_tpcw::schema::SUBJECTS;
use shareddb_tpcw::{build_catalog, build_shared_plan};
use std::sync::Arc;

fn main() {
    let (replicas, capacity, statements) = parse_args();
    let scale = bench_scale();
    let items = scale.items as i64;
    let catalog = Arc::new(build_catalog(&scale).expect("build TPC-W catalog"));
    let (plan, registry) = build_shared_plan(&catalog).expect("build global plan");
    let operator_names: Vec<String> = plan.nodes().iter().map(|n| n.name.clone()).collect();
    let statement_names: Vec<String> = registry.iter().map(|s| s.name.clone()).collect();

    let mut cluster = ClusterEngine::start(
        catalog,
        plan,
        registry,
        EngineConfig::default().trace_capacity(capacity),
        ClusterConfig {
            replicas,
            replicate_statements: vec!["getItemById".to_string()],
            ..ClusterConfig::default()
        },
    )
    .expect("start cluster");

    // A deterministic light/heavy/update mix: enough traffic that batches
    // carry more than one statement, small enough to read the output.
    for i in 0..statements {
        let outcome = match i % 8 {
            7 => cluster.execute_sync(
                "getBestSellers",
                &[Value::text(SUBJECTS[i % SUBJECTS.len()]), Value::Int(0)],
            ),
            6 => cluster.execute_sync(
                "addOrderLine",
                &[
                    Value::Int(60_000_000 + i as i64),
                    Value::Int(i as i64 % 16),
                    Value::Int(i as i64 % items.max(1)),
                    Value::Int(1),
                ],
            ),
            _ => cluster.execute_sync("getItemById", &[Value::Int(i as i64 * 7 % items.max(1))]),
        };
        if let Err(e) = outcome {
            eprintln!("statement {i} failed: {e}");
        }
    }

    for replica in 0..cluster.replicas() {
        let records = cluster.replica_trace(replica);
        println!("== replica {replica}: {} retained events ==", records.len());
        for record in &records {
            print!(
                "[{:>4} {:>9.3}ms] ",
                record.seq,
                record.at.as_secs_f64() * 1e3
            );
            match &record.event {
                TraceEvent::OperatorFired { operator, .. } => {
                    let name = operator_names
                        .get(*operator)
                        .map(String::as_str)
                        .unwrap_or("?");
                    println!("{} ({name})", record.event);
                }
                TraceEvent::QueryRouted { statement, .. } => {
                    let name = statement_names
                        .get(*statement)
                        .map(String::as_str)
                        .unwrap_or("?");
                    println!("{} ({name})", record.event);
                }
                TraceEvent::BatchFormed {
                    batch,
                    queries,
                    updates,
                    mix,
                    heartbeat_us,
                } => {
                    // The mix is what operator busy time gets attributed by,
                    // so print it with statement names resolved.
                    print!(
                        "batch {batch} formed: {queries} queries, {updates} updates, \
                         heartbeat {heartbeat_us}us"
                    );
                    if mix.is_empty() {
                        println!();
                    } else {
                        let named: Vec<String> = mix
                            .iter()
                            .map(|(statement, count)| {
                                let name = statement_names
                                    .get(*statement)
                                    .map(String::as_str)
                                    .unwrap_or("?");
                                format!("{name}\u{00d7}{count}")
                            })
                            .collect();
                        println!(", mix [{}]", named.join(", "));
                    }
                }
                event => println!("{event}"),
            }
        }
        println!();
    }

    println!("== phase latency summaries ==");
    for (replica, snapshots) in cluster.replica_phase_stats().iter().enumerate() {
        for snap in snapshots {
            for phase in Phase::ALL {
                let histogram = snap.phase(phase);
                if histogram.is_empty() {
                    continue;
                }
                println!(
                    "replica {replica} {:<16} {:<10} count={:<5} p50={}us p99={}us max={}us",
                    snap.statement,
                    phase.name(),
                    histogram.count,
                    histogram.percentile_us(0.50),
                    histogram.percentile_us(0.99),
                    histogram.max_us,
                );
            }
        }
    }

    cluster.shutdown();
}

fn parse_args() -> (usize, usize, usize) {
    let mut replicas = 2usize;
    let mut capacity = 512usize;
    let mut statements = env_usize("TRACE_STATEMENTS", 64);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| usage(what))
        };
        match arg.as_str() {
            "--replicas" => replicas = value("--replicas needs N").max(1),
            "--capacity" => capacity = value("--capacity needs EVENTS"),
            "--statements" => statements = value("--statements needs COUNT"),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (replicas, capacity, statements)
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: trace_dump [--replicas N] [--capacity EVENTS] [--statements COUNT]");
    std::process::exit(2);
}

//! Network-frontend throughput: statements per second as a function of the
//! number of concurrent client connections (1 → 1024) and the number of
//! engine replicas behind the endpoint (`--replicas`).
//!
//! Every connection runs a closed loop over the wire protocol. Most
//! connections issue TPC-W `getItemById` point look-ups (the hot, light
//! statement type); one connection per 64 issues `getBestSellers` (a heavy
//! scan-join-aggregate over ITEM × ORDER_LINE). On a single engine the heavy
//! statement convoys every batch: light queries admitted in the same
//! heartbeat wait for the heavy operators to finish (batch-granularity
//! head-of-line blocking). With `--replicas N` the cluster router promotes
//! the hot light type from the engines' own throughput/queue statistics and
//! spreads it by parameter hash, while the heavy type stays pinned to its
//! home replica — isolating light traffic from the heavy cycles exactly as
//! the paper's §4.5 replication argument prescribes.
//!
//! Arguments: `--replicas N[,M,...]` (replica counts to sweep, default `1`),
//! `--scan-segments N[,M,...]` (intra-engine scan-segment counts to sweep,
//! default `1` — env fallback `BENCH_SCAN_SEGMENTS`; each replica splits its
//! shared scans into N hash segments executed on the engine's worker pool),
//! `--heartbeat SPEC[;SPEC...]` (heartbeat policies to sweep, e.g.
//! `fixed:2;adaptive:0.2,2,5` — `;`-separated because adaptive specs contain
//! commas; env fallback `BENCH_HEARTBEAT`; default: the engine default),
//! `--json PATH` (machine-readable results, default
//! `BENCH_server_throughput.json`).
//!
//! Environment: `TPCW_ITEMS` (scale, default 2000), `BENCH_SECONDS` (per
//! point, default 2), `SERVER_MAX_CLIENTS` (sweep ceiling, default 1024),
//! `SERVER_MIN_CLIENTS` (sweep floor, default 1), `BENCH_UPDATE_CLIENTS`
//! (extra connections issuing `addOrderLine` inserts concurrently, default
//! 0 — the cluster-soak lane uses this to exercise snapshot-pinned fanout
//! under write load), `BENCH_REPLICATE` (comma-separated statement names
//! forced onto the replicated route from the start, e.g. `getBestSellers`
//! to exercise co-partitioned join fanout deterministically),
//! `BENCH_SCRAPE_HZ` (scrape the server's `/metrics` endpoint this many
//! times per second while the bench runs, writing the last exposition to
//! `BENCH_metrics_scrape.prom` — exercises scrape-under-load overhead).
//!
//! Output: CSV on stdout
//! (`replicas,segments,heartbeat,clients,heavy,upd_clients,ok,updates,errors,throughput_per_s,light_p50_us,light_p99_us,mean_latency_us,batches_per_s`)
//! plus the JSON file with per-replica engine statistics per point. The
//! percentiles cover the **light** connections only (the tail the cluster is
//! supposed to protect); `mean_latency_us` covers all statements including
//! the heavy ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header};
use shareddb_client::Connection;
use shareddb_cluster::ClusterConfig;
use shareddb_common::Value;
use shareddb_core::stats::StatementPhaseSnapshot;
use shareddb_core::{EngineConfig, HeartbeatPolicy, Phase};
use shareddb_server::{Server, ServerConfig};
use shareddb_tpcw::schema::SUBJECTS;
use shareddb_tpcw::{build_catalog, build_shared_plan};
use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

struct PointResult {
    replicas: usize,
    scan_segments: usize,
    /// Canonical heartbeat-policy spec this point ran with.
    heartbeat: String,
    clients: usize,
    heavy: usize,
    update_clients: usize,
    ok: u64,
    updates_ok: u64,
    errors: u64,
    throughput_per_s: f64,
    light_p50_us: u64,
    light_p99_us: u64,
    server_light_p99_us: u64,
    mean_latency_us: f64,
    batches_per_s: f64,
    per_replica: Vec<ReplicaPoint>,
    cluster_phases: Vec<PhaseRow>,
}

struct ReplicaPoint {
    batches: u64,
    queries: u64,
    updates: u64,
    failed: u64,
    phases: Vec<PhaseRow>,
    segments: Vec<SegmentRow>,
}

/// One scan segment's window statistics flattened for the JSON report.
struct SegmentRow {
    segment: usize,
    batches: u64,
    rows: u64,
    execute_p50_us: u64,
    execute_p99_us: u64,
}

/// One statement × phase latency summary flattened for the JSON report.
struct PhaseRow {
    statement: String,
    phase: &'static str,
    count: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn phase_rows(statements: &[StatementPhaseSnapshot]) -> Vec<PhaseRow> {
    let mut rows = Vec::new();
    for snap in statements {
        for phase in Phase::ALL {
            let histogram = snap.phase(phase);
            if histogram.is_empty() {
                continue;
            }
            rows.push(PhaseRow {
                statement: snap.statement.clone(),
                phase: phase.name(),
                count: histogram.count,
                p50_us: histogram.percentile_us(0.50),
                p99_us: histogram.percentile_us(0.99),
                max_us: histogram.max_us,
            });
        }
    }
    rows
}

fn main() {
    let (replica_counts, segment_counts, heartbeats, json_path) = parse_args();
    let scale = bench_scale();
    let duration = bench_duration();
    let max_clients = env_usize("SERVER_MAX_CLIENTS", 1024);
    let min_clients = env_usize("SERVER_MIN_CLIENTS", 1);
    let update_clients = env_usize("BENCH_UPDATE_CLIENTS", 0);
    let replicate: Vec<String> = std::env::var("BENCH_REPLICATE")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let items = scale.items as i64;

    print_header(&[
        "replicas",
        "segments",
        "heartbeat",
        "clients",
        "heavy",
        "upd_clients",
        "ok",
        "updates",
        "errors",
        "throughput_per_s",
        "light_p50_us",
        "light_p99_us",
        "mean_latency_us",
        "batches_per_s",
    ]);

    let mut points: Vec<PointResult> = Vec::new();
    for heartbeat in &heartbeats {
        for &scan_segments in &segment_counts {
            for &replicas in &replica_counts {
                let mut clients = min_clients.max(1);
                while clients <= max_clients {
                    let point = run_point(
                        replicas,
                        scan_segments,
                        heartbeat,
                        clients,
                        update_clients,
                        &replicate,
                        items,
                        duration,
                        &scale,
                    );
                    // The heartbeat spec is CSV-quoted: adaptive specs
                    // contain commas.
                    println!(
                        "{},{},\"{}\",{},{},{},{},{},{},{:.1},{},{},{:.1},{:.1}",
                        point.replicas,
                        point.scan_segments,
                        point.heartbeat,
                        point.clients,
                        point.heavy,
                        point.update_clients,
                        point.ok,
                        point.updates_ok,
                        point.errors,
                        point.throughput_per_s,
                        point.light_p50_us,
                        point.light_p99_us,
                        point.mean_latency_us,
                        point.batches_per_s,
                    );
                    points.push(point);
                    clients *= 2;
                }
            }
        }
    }

    if let Err(e) = write_json(&json_path, &scale.items, duration.as_secs_f64(), &points) {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path} ({} points)", points.len());
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    replicas: usize,
    scan_segments: usize,
    heartbeat: &HeartbeatPolicy,
    clients: usize,
    update_clients: usize,
    replicate: &[String],
    items: i64,
    duration: std::time::Duration,
    scale: &shareddb_tpcw::TpcwScale,
) -> PointResult {
    let catalog = Arc::new(build_catalog(scale).expect("catalog"));
    let (plan, registry) = build_shared_plan(&catalog).expect("plan");
    let mut server = Server::start(
        catalog,
        plan,
        registry,
        EngineConfig::default()
            .scan_segments(scan_segments)
            .heartbeat_policy(*heartbeat),
        ServerConfig {
            max_inflight_per_session: 16,
            cluster: ClusterConfig {
                replicas,
                replicate_statements: replicate.to_vec(),
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr();

    // One heavy (getBestSellers) connection per 64 clients; the rest run the
    // hot point look-up.
    let heavy = clients / 64;
    let scrape_hz = env_usize("BENCH_SCRAPE_HZ", 0);
    let ok = Arc::new(AtomicU64::new(0));
    let updates_ok = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let latencies_us = Arc::new(Mutex::new(Vec::<u64>::new()));
    let last_scrape = Arc::new(Mutex::new(String::new()));
    // Two barriers gate the measurement window: every connection finishes
    // connect + prepare before `ready`, the main thread zeroes all engine /
    // cluster / frontend statistics, and `go` releases the load — so the
    // server-side histograms in this point's JSON cover exactly this window.
    let parties = clients + update_clients + usize::from(scrape_hz > 0) + 1;
    let ready = Arc::new(Barrier::new(parties));
    let go = Arc::new(Barrier::new(parties));
    let orders = scale.orders as i64;
    let started = std::thread::scope(|scope| {
        // Concurrent writers: each keeps appending ORDER_LINE rows (the
        // probe side of the getBestSellers join), so fanned-out joins and
        // aggregates run against a continuously moving version set.
        for writer_idx in 0..update_clients {
            let updates_ok = Arc::clone(&updates_ok);
            let errors = Arc::clone(&errors);
            let ready = Arc::clone(&ready);
            let go = Arc::clone(&go);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9_000 + writer_idx as u64);
                let setup = Connection::connect(addr).and_then(|mut conn| {
                    let prepared = conn.prepare("addOrderLine")?;
                    Ok((conn, prepared))
                });
                ready.wait();
                go.wait();
                let (mut conn, prepared) = match setup {
                    Ok(pair) => pair,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let started = Instant::now();
                let mut seq: i64 = 0;
                while started.elapsed() < duration {
                    seq += 1;
                    // Unique OL_ID far above the generated data.
                    let params = vec![
                        Value::Int(50_000_000 + writer_idx as i64 * 1_000_000 + seq),
                        Value::Int(rng.gen_range(0..orders.max(1))),
                        Value::Int(rng.gen_range(0..items.max(1))),
                        Value::Int(rng.gen_range(1..5)),
                    ];
                    match conn.execute(&prepared, &params) {
                        Ok(_) => {
                            updates_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                let _ = conn.close();
            });
        }
        for client_idx in 0..clients {
            let ok = Arc::clone(&ok);
            let errors = Arc::clone(&errors);
            let latency_ns = Arc::clone(&latency_ns);
            let latencies_us = Arc::clone(&latencies_us);
            let ready = Arc::clone(&ready);
            let go = Arc::clone(&go);
            let is_heavy = client_idx < heavy;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + client_idx as u64);
                let statement = if is_heavy {
                    "getBestSellers"
                } else {
                    "getItemById"
                };
                let setup = Connection::connect(addr).and_then(|mut conn| {
                    let prepared = conn.prepare(statement)?;
                    Ok((conn, prepared))
                });
                ready.wait();
                go.wait();
                let (mut conn, prepared) = match setup {
                    Ok(pair) => pair,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let started = Instant::now();
                let mut local_latencies = Vec::new();
                while started.elapsed() < duration {
                    let params = if is_heavy {
                        vec![
                            Value::text(SUBJECTS[rng.gen_range(0..SUBJECTS.len())]),
                            Value::Int(0),
                        ]
                    } else {
                        vec![Value::Int(rng.gen_range(0..items.max(1)))]
                    };
                    let begun = Instant::now();
                    match conn.execute(&prepared, &params) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            let elapsed = begun.elapsed();
                            latency_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                            if !is_heavy {
                                local_latencies.push(elapsed.as_micros() as u64);
                            }
                        }
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                latencies_us
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .append(&mut local_latencies);
                let _ = conn.close();
            });
        }
        if scrape_hz > 0 {
            // In-process Prometheus scraper: plain HTTP GETs against the
            // same port the binary protocol uses, at BENCH_SCRAPE_HZ, while
            // the load runs — the overhead shows up in the point's numbers.
            let last_scrape = Arc::clone(&last_scrape);
            let ready = Arc::clone(&ready);
            let go = Arc::clone(&go);
            scope.spawn(move || {
                let interval = std::time::Duration::from_secs_f64(1.0 / scrape_hz as f64);
                ready.wait();
                go.wait();
                let started = Instant::now();
                while started.elapsed() < duration {
                    if let Some(body) = scrape_metrics(addr) {
                        *last_scrape.lock().unwrap_or_else(|e| e.into_inner()) = body;
                    }
                    std::thread::sleep(interval.min(duration.saturating_sub(started.elapsed())));
                }
            });
        }
        ready.wait();
        server.reset_stats();
        go.wait();
        Instant::now()
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let batches = server.engine_stats().map(|s| s.batches).unwrap_or(0);
    let replica_phases = server.replica_phase_stats().unwrap_or_default();
    let replica_segments = server.replica_segment_stats().unwrap_or_default();
    let per_replica: Vec<ReplicaPoint> = server
        .replica_stats()
        .unwrap_or_default()
        .iter()
        .enumerate()
        .map(|(i, s)| ReplicaPoint {
            batches: s.batches,
            queries: s.queries,
            updates: s.updates,
            failed: s.failed,
            phases: replica_phases
                .get(i)
                .map(|p| phase_rows(p))
                .unwrap_or_default(),
            segments: replica_segments
                .get(i)
                .map(|(_, segs)| {
                    segs.iter()
                        .map(|seg| SegmentRow {
                            segment: seg.segment,
                            batches: seg.batches,
                            rows: seg.rows,
                            execute_p50_us: seg.execute.percentile_us(0.50),
                            execute_p99_us: seg.execute.percentile_us(0.99),
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect();
    // Scatter + merge live in the cluster-level table, reply-flush in the
    // frontend's; both happen outside any single replica, so they share the
    // JSON's `cluster_phases` section.
    let mut cluster_phases = phase_rows(&server.cluster_phase_stats().unwrap_or_default());
    cluster_phases.extend(phase_rows(&server.flush_phase_stats()));
    // Server-side tail of the light statement: merge the Total-phase
    // histograms for getItemById across replicas and read the p99 — this is
    // the latency floor check_regression guards (client-side p99 includes
    // scheduling noise from hundreds of bench threads; this does not).
    let mut light_total = shareddb_common::metrics::HistogramSnapshot::default();
    for statements in &replica_phases {
        if let Some(snap) = statements.iter().find(|s| s.statement == "getItemById") {
            light_total.merge_from(snap.phase(Phase::Total));
        }
    }
    if scrape_hz > 0 {
        let body = last_scrape
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if !body.is_empty() {
            if let Err(e) = std::fs::write("BENCH_metrics_scrape.prom", body) {
                eprintln!("failed to write BENCH_metrics_scrape.prom: {e}");
            }
        }
    }
    let ok_count = ok.load(Ordering::Relaxed);
    let mean_latency_us = if ok_count == 0 {
        0.0
    } else {
        latency_ns.load(Ordering::Relaxed) as f64 / ok_count as f64 / 1_000.0
    };
    let mut sorted = std::mem::take(&mut *latencies_us.lock().unwrap_or_else(|e| e.into_inner()));
    sorted.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        }
    };
    let point = PointResult {
        replicas,
        scan_segments,
        heartbeat: heartbeat.to_string(),
        clients,
        heavy,
        update_clients,
        ok: ok_count,
        updates_ok: updates_ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        throughput_per_s: ok_count as f64 / elapsed,
        light_p50_us: percentile(0.50),
        light_p99_us: percentile(0.99),
        server_light_p99_us: light_total.percentile_us(0.99),
        mean_latency_us,
        batches_per_s: batches as f64 / elapsed,
        per_replica,
        cluster_phases,
    };
    server.shutdown();
    point
}

/// One blocking `/metrics` scrape over a throwaway TCP connection (the
/// server answers with `Connection: close`); returns the response body.
fn scrape_metrics(addr: std::net::SocketAddr) -> Option<String> {
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

fn parse_args() -> (Vec<usize>, Vec<usize>, Vec<HeartbeatPolicy>, String) {
    let parse_counts = |list: &str, what: &str| -> Vec<usize> {
        list.split(',')
            .map(|n| {
                n.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage(&format!("bad {what} value")))
                    .max(1)
            })
            .collect()
    };
    // Heartbeat specs are `;`-separated: adaptive specs contain commas.
    let parse_heartbeats = |list: &str, what: &str| -> Vec<HeartbeatPolicy> {
        list.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                HeartbeatPolicy::parse(s).unwrap_or_else(|e| usage(&format!("bad {what}: {e}")))
            })
            .collect()
    };
    let mut replicas = vec![1usize];
    // The CLI flag wins over the env fallback (CI lanes set the env).
    let mut scan_segments = std::env::var("BENCH_SCAN_SEGMENTS")
        .map(|v| parse_counts(&v, "BENCH_SCAN_SEGMENTS"))
        .unwrap_or_else(|_| vec![1usize]);
    let mut heartbeats = std::env::var("BENCH_HEARTBEAT")
        .map(|v| parse_heartbeats(&v, "BENCH_HEARTBEAT"))
        .unwrap_or_default();
    let mut json_path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_server_throughput.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--replicas" => {
                let list = args.next().unwrap_or_else(|| usage("--replicas needs N"));
                replicas = parse_counts(&list, "--replicas");
            }
            "--scan-segments" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--scan-segments needs N"));
                scan_segments = parse_counts(&list, "--scan-segments");
            }
            "--heartbeat" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--heartbeat needs SPEC"));
                heartbeats = parse_heartbeats(&list, "--heartbeat");
            }
            "--json" => {
                json_path = args.next().unwrap_or_else(|| usage("--json needs PATH"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if heartbeats.is_empty() {
        heartbeats = vec![EngineConfig::default().heartbeat];
    }
    (replicas, scan_segments, heartbeats, json_path)
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: server_throughput [--replicas N[,M,...]] [--scan-segments N[,M,...]] \
         [--heartbeat SPEC[;SPEC,...]] [--json PATH]"
    );
    std::process::exit(2);
}

fn write_json(
    path: &str,
    items: &usize,
    seconds: f64,
    points: &[PointResult],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"server_throughput\",\n");
    out.push_str(&format!("  \"tpcw_items\": {items},\n"));
    out.push_str(&format!("  \"seconds_per_point\": {seconds},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"scan_segments\": {}, \"heartbeat\": \"{}\", \
             \"clients\": {}, \
             \"heavy_clients\": {}, \
             \"update_clients\": {}, \"ok\": {}, \"updates_ok\": {}, \
             \"errors\": {}, \"throughput_per_s\": {:.1}, \"light_p50_us\": {}, \
             \"light_p99_us\": {}, \"server_light_p99_us\": {}, \
             \"mean_latency_us\": {:.1}, \"batches_per_s\": {:.1}, \
             \"per_replica\": [",
            p.replicas,
            p.scan_segments,
            p.heartbeat,
            p.clients,
            p.heavy,
            p.update_clients,
            p.ok,
            p.updates_ok,
            p.errors,
            p.throughput_per_s,
            p.light_p50_us,
            p.light_p99_us,
            p.server_light_p99_us,
            p.mean_latency_us,
            p.batches_per_s,
        ));
        for (j, r) in p.per_replica.iter().enumerate() {
            out.push_str(&format!(
                "{{\"replica\": {j}, \"batches\": {}, \"queries\": {}, \"updates\": {}, \
                 \"failed\": {}, \"phases\": ",
                r.batches, r.queries, r.updates, r.failed
            ));
            write_phase_rows(&mut out, &r.phases);
            out.push_str(", \"segments\": [");
            for (k, seg) in r.segments.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"segment\": {}, \"batches\": {}, \"rows\": {}, \
                     \"execute_p50_us\": {}, \"execute_p99_us\": {}}}",
                    seg.segment, seg.batches, seg.rows, seg.execute_p50_us, seg.execute_p99_us
                ));
                if k + 1 < r.segments.len() {
                    out.push_str(", ");
                }
            }
            out.push(']');
            out.push('}');
            if j + 1 < p.per_replica.len() {
                out.push_str(", ");
            }
        }
        out.push_str("], \"cluster_phases\": ");
        write_phase_rows(&mut out, &p.cluster_phases);
        out.push('}');
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn write_phase_rows(out: &mut String, rows: &[PhaseRow]) {
    out.push('[');
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{{\"statement\": \"{}\", \"phase\": \"{}\", \"count\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            row.statement, row.phase, row.count, row.p50_us, row.p99_us, row.max_us
        ));
        if k + 1 < rows.len() {
            out.push_str(", ");
        }
    }
    out.push(']');
}

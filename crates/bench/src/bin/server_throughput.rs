//! Network-frontend throughput: statements per second as a function of the
//! number of concurrent client connections (1 → 1024) and the number of
//! engine replicas behind the endpoint (`--replicas`).
//!
//! Every connection runs a closed loop over the wire protocol. Most
//! connections issue TPC-W `getItemById` point look-ups (the hot, light
//! statement type); one connection per 64 issues `getBestSellers` (a heavy
//! scan-join-aggregate over ITEM × ORDER_LINE). On a single engine the heavy
//! statement convoys every batch: light queries admitted in the same
//! heartbeat wait for the heavy operators to finish (batch-granularity
//! head-of-line blocking). With `--replicas N` the cluster router promotes
//! the hot light type from the engines' own throughput/queue statistics and
//! spreads it by parameter hash, while the heavy type stays pinned to its
//! home replica — isolating light traffic from the heavy cycles exactly as
//! the paper's §4.5 replication argument prescribes.
//!
//! Arguments: `--replicas N[,M,...]` (replica counts to sweep, default `1`),
//! `--json PATH` (machine-readable results, default
//! `BENCH_server_throughput.json`).
//!
//! Environment: `TPCW_ITEMS` (scale, default 2000), `BENCH_SECONDS` (per
//! point, default 2), `SERVER_MAX_CLIENTS` (sweep ceiling, default 1024),
//! `SERVER_MIN_CLIENTS` (sweep floor, default 1), `BENCH_UPDATE_CLIENTS`
//! (extra connections issuing `addOrderLine` inserts concurrently, default
//! 0 — the cluster-soak lane uses this to exercise snapshot-pinned fanout
//! under write load), `BENCH_REPLICATE` (comma-separated statement names
//! forced onto the replicated route from the start, e.g. `getBestSellers`
//! to exercise co-partitioned join fanout deterministically).
//!
//! Output: CSV on stdout
//! (`replicas,clients,heavy,ok,errors,throughput_per_s,light_p50_us,light_p99_us,mean_latency_us,batches_per_s`)
//! plus the JSON file with per-replica engine statistics per point. The
//! percentiles cover the **light** connections only (the tail the cluster is
//! supposed to protect); `mean_latency_us` covers all statements including
//! the heavy ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header};
use shareddb_client::Connection;
use shareddb_cluster::ClusterConfig;
use shareddb_common::Value;
use shareddb_core::EngineConfig;
use shareddb_server::{Server, ServerConfig};
use shareddb_tpcw::schema::SUBJECTS;
use shareddb_tpcw::{build_catalog, build_shared_plan};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct PointResult {
    replicas: usize,
    clients: usize,
    heavy: usize,
    update_clients: usize,
    ok: u64,
    updates_ok: u64,
    errors: u64,
    throughput_per_s: f64,
    light_p50_us: u64,
    light_p99_us: u64,
    mean_latency_us: f64,
    batches_per_s: f64,
    per_replica: Vec<ReplicaPoint>,
}

struct ReplicaPoint {
    batches: u64,
    queries: u64,
    updates: u64,
    failed: u64,
}

fn main() {
    let (replica_counts, json_path) = parse_args();
    let scale = bench_scale();
    let duration = bench_duration();
    let max_clients = env_usize("SERVER_MAX_CLIENTS", 1024);
    let min_clients = env_usize("SERVER_MIN_CLIENTS", 1);
    let update_clients = env_usize("BENCH_UPDATE_CLIENTS", 0);
    let replicate: Vec<String> = std::env::var("BENCH_REPLICATE")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let items = scale.items as i64;

    print_header(&[
        "replicas",
        "clients",
        "heavy",
        "upd_clients",
        "ok",
        "updates",
        "errors",
        "throughput_per_s",
        "light_p50_us",
        "light_p99_us",
        "mean_latency_us",
        "batches_per_s",
    ]);

    let mut points: Vec<PointResult> = Vec::new();
    for &replicas in &replica_counts {
        let mut clients = min_clients.max(1);
        while clients <= max_clients {
            let point = run_point(
                replicas,
                clients,
                update_clients,
                &replicate,
                items,
                duration,
                &scale,
            );
            println!(
                "{},{},{},{},{},{},{},{:.1},{},{},{:.1},{:.1}",
                point.replicas,
                point.clients,
                point.heavy,
                point.update_clients,
                point.ok,
                point.updates_ok,
                point.errors,
                point.throughput_per_s,
                point.light_p50_us,
                point.light_p99_us,
                point.mean_latency_us,
                point.batches_per_s,
            );
            points.push(point);
            clients *= 2;
        }
    }

    if let Err(e) = write_json(&json_path, &scale.items, duration.as_secs_f64(), &points) {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path} ({} points)", points.len());
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    replicas: usize,
    clients: usize,
    update_clients: usize,
    replicate: &[String],
    items: i64,
    duration: std::time::Duration,
    scale: &shareddb_tpcw::TpcwScale,
) -> PointResult {
    let catalog = Arc::new(build_catalog(scale).expect("catalog"));
    let (plan, registry) = build_shared_plan(&catalog).expect("plan");
    let mut server = Server::start(
        catalog,
        plan,
        registry,
        EngineConfig::default(),
        ServerConfig {
            max_inflight_per_session: 16,
            cluster: ClusterConfig {
                replicas,
                replicate_statements: replicate.to_vec(),
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr();

    // One heavy (getBestSellers) connection per 64 clients; the rest run the
    // hot point look-up.
    let heavy = clients / 64;
    let ok = Arc::new(AtomicU64::new(0));
    let updates_ok = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let latencies_us = Arc::new(Mutex::new(Vec::<u64>::new()));
    let batches_before = server.engine_stats().map(|s| s.batches).unwrap_or(0);
    let started = Instant::now();
    let orders = scale.orders as i64;
    std::thread::scope(|scope| {
        // Concurrent writers: each keeps appending ORDER_LINE rows (the
        // probe side of the getBestSellers join), so fanned-out joins and
        // aggregates run against a continuously moving version set.
        for writer_idx in 0..update_clients {
            let updates_ok = Arc::clone(&updates_ok);
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9_000 + writer_idx as u64);
                let mut conn = match Connection::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let prepared = match conn.prepare("addOrderLine") {
                    Ok(p) => p,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let mut seq: i64 = 0;
                while started.elapsed() < duration {
                    seq += 1;
                    // Unique OL_ID far above the generated data.
                    let params = vec![
                        Value::Int(50_000_000 + writer_idx as i64 * 1_000_000 + seq),
                        Value::Int(rng.gen_range(0..orders.max(1))),
                        Value::Int(rng.gen_range(0..items.max(1))),
                        Value::Int(rng.gen_range(1..5)),
                    ];
                    match conn.execute(&prepared, &params) {
                        Ok(_) => {
                            updates_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                let _ = conn.close();
            });
        }
        for client_idx in 0..clients {
            let ok = Arc::clone(&ok);
            let errors = Arc::clone(&errors);
            let latency_ns = Arc::clone(&latency_ns);
            let latencies_us = Arc::clone(&latencies_us);
            let is_heavy = client_idx < heavy;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + client_idx as u64);
                let mut conn = match Connection::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let statement = if is_heavy {
                    "getBestSellers"
                } else {
                    "getItemById"
                };
                let prepared = match conn.prepare(statement) {
                    Ok(p) => p,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let mut local_latencies = Vec::new();
                while started.elapsed() < duration {
                    let params = if is_heavy {
                        vec![
                            Value::text(SUBJECTS[rng.gen_range(0..SUBJECTS.len())]),
                            Value::Int(0),
                        ]
                    } else {
                        vec![Value::Int(rng.gen_range(0..items.max(1)))]
                    };
                    let begun = Instant::now();
                    match conn.execute(&prepared, &params) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            let elapsed = begun.elapsed();
                            latency_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                            if !is_heavy {
                                local_latencies.push(elapsed.as_micros() as u64);
                            }
                        }
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                latencies_us
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .append(&mut local_latencies);
                let _ = conn.close();
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let batches = server.engine_stats().map(|s| s.batches).unwrap_or(0) - batches_before;
    let per_replica = server
        .replica_stats()
        .unwrap_or_default()
        .iter()
        .map(|s| ReplicaPoint {
            batches: s.batches,
            queries: s.queries,
            updates: s.updates,
            failed: s.failed,
        })
        .collect();
    let ok_count = ok.load(Ordering::Relaxed);
    let mean_latency_us = if ok_count == 0 {
        0.0
    } else {
        latency_ns.load(Ordering::Relaxed) as f64 / ok_count as f64 / 1_000.0
    };
    let mut sorted = std::mem::take(&mut *latencies_us.lock().unwrap_or_else(|e| e.into_inner()));
    sorted.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        }
    };
    let point = PointResult {
        replicas,
        clients,
        heavy,
        update_clients,
        ok: ok_count,
        updates_ok: updates_ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        throughput_per_s: ok_count as f64 / elapsed,
        light_p50_us: percentile(0.50),
        light_p99_us: percentile(0.99),
        mean_latency_us,
        batches_per_s: batches as f64 / elapsed,
        per_replica,
    };
    server.shutdown();
    point
}

fn parse_args() -> (Vec<usize>, String) {
    let mut replicas = vec![1usize];
    let mut json_path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_server_throughput.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--replicas" => {
                let list = args.next().unwrap_or_else(|| usage("--replicas needs N"));
                replicas = list
                    .split(',')
                    .map(|n| {
                        n.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| usage("bad --replicas value"))
                            .max(1)
                    })
                    .collect();
            }
            "--json" => {
                json_path = args.next().unwrap_or_else(|| usage("--json needs PATH"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (replicas, json_path)
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: server_throughput [--replicas N[,M,...]] [--json PATH]");
    std::process::exit(2);
}

fn write_json(
    path: &str,
    items: &usize,
    seconds: f64,
    points: &[PointResult],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"server_throughput\",\n");
    out.push_str(&format!("  \"tpcw_items\": {items},\n"));
    out.push_str(&format!("  \"seconds_per_point\": {seconds},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"clients\": {}, \"heavy_clients\": {}, \
             \"update_clients\": {}, \"ok\": {}, \"updates_ok\": {}, \
             \"errors\": {}, \"throughput_per_s\": {:.1}, \"light_p50_us\": {}, \
             \"light_p99_us\": {}, \"mean_latency_us\": {:.1}, \"batches_per_s\": {:.1}, \
             \"per_replica\": [",
            p.replicas,
            p.clients,
            p.heavy,
            p.update_clients,
            p.ok,
            p.updates_ok,
            p.errors,
            p.throughput_per_s,
            p.light_p50_us,
            p.light_p99_us,
            p.mean_latency_us,
            p.batches_per_s,
        ));
        for (j, r) in p.per_replica.iter().enumerate() {
            out.push_str(&format!(
                "{{\"replica\": {j}, \"batches\": {}, \"queries\": {}, \"updates\": {}, \
                 \"failed\": {}}}",
                r.batches, r.queries, r.updates, r.failed
            ));
            if j + 1 < p.per_replica.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

//! Network-frontend throughput: statements per second as a function of the
//! number of concurrent client connections (1 → 1024).
//!
//! Every connection runs a closed loop of TPC-W `getItemById` point look-ups
//! over the wire protocol; the server funnels all sockets into one shared
//! batch per heartbeat, so throughput should rise with the client count while
//! the batch rate stays roughly flat — the SharedDB scaling argument, now
//! measured across the socket boundary. The server side is a single reactor
//! thread regardless of the client count; the sweep to 1024 connections is
//! exactly the regime where the old thread-per-connection frontend (2 OS
//! threads per socket) fell over.
//!
//! Environment: `TPCW_ITEMS` (scale, default 2000), `BENCH_SECONDS` (per
//! point, default 2), `SERVER_MAX_CLIENTS` (sweep ceiling, default 1024).
//!
//! Output: CSV `clients,ok,errors,throughput_per_s,mean_latency_us,batches_per_s`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header};
use shareddb_client::Connection;
use shareddb_common::Value;
use shareddb_core::EngineConfig;
use shareddb_server::{Server, ServerConfig};
use shareddb_tpcw::{build_catalog, build_shared_plan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = bench_scale();
    let duration = bench_duration();
    let max_clients = env_usize("SERVER_MAX_CLIENTS", 1024);
    let items = scale.items as i64;

    print_header(&[
        "clients",
        "ok",
        "errors",
        "throughput_per_s",
        "mean_latency_us",
        "batches_per_s",
    ]);

    let mut clients = 1usize;
    while clients <= max_clients {
        let catalog = Arc::new(build_catalog(&scale).expect("catalog"));
        let (plan, registry) = build_shared_plan(&catalog).expect("plan");
        let mut server = Server::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ServerConfig {
                max_inflight_per_session: 16,
                ..ServerConfig::default()
            },
        )
        .expect("server");
        let addr = server.local_addr();

        let ok = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let latency_ns = Arc::new(AtomicU64::new(0));
        let batches_before = server.engine_stats().map(|s| s.batches).unwrap_or(0);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client_idx in 0..clients {
                let ok = Arc::clone(&ok);
                let errors = Arc::clone(&errors);
                let latency_ns = Arc::clone(&latency_ns);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + client_idx as u64);
                    let mut conn = match Connection::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    let get_item = match conn.prepare("getItemById") {
                        Ok(p) => p,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    while started.elapsed() < duration {
                        let id = rng.gen_range(0..items.max(1));
                        let begun = Instant::now();
                        match conn.execute(&get_item, &[Value::Int(id)]) {
                            Ok(_) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                latency_ns.fetch_add(
                                    begun.elapsed().as_nanos() as u64,
                                    Ordering::Relaxed,
                                );
                            }
                            Err(e) if e.is_retryable() => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    let _ = conn.close();
                });
            }
        });
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let batches = server.engine_stats().map(|s| s.batches).unwrap_or(0) - batches_before;
        let ok_count = ok.load(Ordering::Relaxed);
        let mean_latency_us = if ok_count == 0 {
            0.0
        } else {
            latency_ns.load(Ordering::Relaxed) as f64 / ok_count as f64 / 1_000.0
        };
        println!(
            "{},{},{},{:.1},{:.1},{:.1}",
            clients,
            ok_count,
            errors.load(Ordering::Relaxed),
            ok_count as f64 / elapsed,
            mean_latency_us,
            batches as f64 / elapsed,
        );
        server.shutdown();
        clients *= 2;
    }
}

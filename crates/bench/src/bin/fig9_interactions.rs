//! Figure 9: maximum throughput of each individual TPC-W web interaction,
//! for all three systems (14 × 3 bars).
//!
//! Clients issue only the queries of a single web interaction as fast as they
//! can; the reported number is the successful-interaction throughput.

use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header, SystemUnderTest};
use shareddb_tpcw::{run_single_interaction, ALL_INTERACTIONS};

fn main() {
    let scale = bench_scale();
    let duration = bench_duration();
    let cores = env_usize("FIG9_CORES", 24);
    let clients = env_usize("FIG9_CLIENTS", 24);

    eprintln!(
        "# fig9: items={}, duration={:?}, cores={}, clients={}",
        scale.items, duration, cores, clients
    );
    print_header(&[
        "interaction",
        "system",
        "max_wips",
        "attempted",
        "timed_out",
        "failed",
        "mean_latency_ms",
    ]);

    for interaction in ALL_INTERACTIONS {
        for system in SystemUnderTest::all() {
            let db = system.build(&scale, cores);
            let report =
                run_single_interaction(db.as_ref(), &scale, interaction, duration, clients, 1.0);
            println!(
                "{},{},{:.1},{},{},{},{:.2}",
                interaction.name(),
                system.label(),
                report.wips,
                report.attempted,
                report.timed_out,
                report.failed,
                report.mean_latency.as_secs_f64() * 1e3,
            );
        }
    }
}

//! Figure 11: load interaction between light and heavy queries.
//!
//! A constant load of "search item by title" queries (the paper: 400/s) is
//! mixed with an increasing share of "best sellers" queries. The figure plots
//! the total sustained throughput of each system: the query-at-a-time systems
//! collapse below the constant light load once heavy queries compete for
//! resources, while SharedDB's throughput keeps increasing because the heavy
//! queries share the same operators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_bench::{bench_duration, bench_scale, env_usize, print_header, SystemUnderTest};
use shareddb_common::Value;
use shareddb_tpcw::SUBJECTS;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn heavy_percent_points() -> Vec<usize> {
    match std::env::var("FIG11_HEAVY_PERCENTS") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![0, 5, 10, 20, 30, 40, 50],
    }
}

fn main() {
    let scale = bench_scale();
    let duration = bench_duration();
    let cores = env_usize("FIG11_CORES", 24);
    let light_rate = env_usize("FIG11_LIGHT_RATE", 200) as f64; // light queries per second
    let clients = env_usize("FIG11_CLIENTS", 24);

    eprintln!(
        "# fig11: items={}, duration={:?}, light_rate={light_rate}/s",
        scale.items, duration
    );
    print_header(&[
        "heavy_percent",
        "system",
        "total_throughput_per_s",
        "light_completed",
        "heavy_completed",
        "offered_per_s",
    ]);

    for system in SystemUnderTest::all() {
        let db = system.build(&scale, cores);
        for &heavy_percent in &heavy_percent_points() {
            // Offered rate such that light queries stay at `light_rate`/s and
            // heavy queries make up `heavy_percent` of the total stream.
            let total_rate = light_rate / (1.0 - (heavy_percent as f64 / 100.0)).max(0.01);
            let interarrival = Duration::from_secs_f64(1.0 / total_rate);
            let light_done = AtomicU64::new(0);
            let heavy_done = AtomicU64::new(0);
            let slot = AtomicUsize::new(0);
            let start = Instant::now();
            std::thread::scope(|scope| {
                let db = db.as_ref();
                let light_done = &light_done;
                let heavy_done = &heavy_done;
                let slot = &slot;
                for t in 0..clients {
                    let scale = scale.clone();
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(500 + t as u64);
                        loop {
                            let elapsed = start.elapsed();
                            if elapsed >= duration {
                                break;
                            }
                            let s = slot.fetch_add(1, Ordering::Relaxed);
                            let scheduled = interarrival.mul_f64(s as f64);
                            if scheduled > duration {
                                break;
                            }
                            if scheduled > elapsed {
                                std::thread::sleep(scheduled - elapsed);
                            }
                            let heavy = rng.gen_range(0..100) < heavy_percent;
                            if heavy {
                                let params = [
                                    Value::text(SUBJECTS[rng.gen_range(0..SUBJECTS.len())]),
                                    Value::Int((scale.orders as i64 - 1_000).max(0)),
                                ];
                                if db
                                    .execute("getBestSellers", &params, Duration::from_secs(20))
                                    .is_ok()
                                {
                                    heavy_done.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                let params = [Value::Int(rng.gen_range(0..scale.items as i64))];
                                if db
                                    .execute("getBook", &params, Duration::from_secs(3))
                                    .is_ok()
                                {
                                    light_done.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let light = light_done.load(Ordering::Relaxed);
            let heavy = heavy_done.load(Ordering::Relaxed);
            println!(
                "{},{},{:.1},{},{},{:.1}",
                heavy_percent,
                system.label(),
                (light + heavy) as f64 / elapsed,
                light,
                heavy,
                total_rate,
            );
        }
    }
}

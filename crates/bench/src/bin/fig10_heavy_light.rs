//! Figure 10: batch response time as a function of batch size, for a light
//! query ("search item by title" — a key/key join fetching one item and its
//! author, part of the ProductDetail interaction) and a heavy query (the
//! "best sellers" analysis).
//!
//! A batch of N concurrent queries (with different parameters) is submitted
//! to each system *all at once* — exactly as in the paper, which issues a
//! stream of N concurrent queries and measures the time until the whole batch
//! is answered. For SharedDB the measured time therefore includes the
//! queueing cycle. The TPC-W response-time limit lines of the figure are 3 s
//! (light query) and 5 s (heavy query).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_baseline::EngineProfile;
use shareddb_bench::{bench_scale, env_usize, print_header};
use shareddb_common::Value;
use shareddb_core::EngineConfig;
use shareddb_tpcw::{build_catalog, BaselineSystem, SharedDbSystem, TpcwScale, SUBJECTS};
use std::sync::Arc;
use std::time::Instant;

fn batch_points() -> Vec<usize> {
    match std::env::var("FIG10_BATCHES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![1, 10, 50, 100, 250, 500, 1000, 2000],
    }
}

/// Generates the parameter vector of one query of the given kind.
fn params(kind: &str, scale: &TpcwScale, rng: &mut StdRng) -> Vec<Value> {
    match kind {
        "SearchItemByTitle" => vec![Value::Int(rng.gen_range(0..scale.items as i64))],
        _ => vec![
            Value::text(SUBJECTS[rng.gen_range(0..SUBJECTS.len())]),
            Value::Int((scale.orders as i64 - 1_000).max(0)),
        ],
    }
}

fn statement(kind: &str) -> &'static str {
    match kind {
        "SearchItemByTitle" => "getBook",
        _ => "getBestSellers",
    }
}

/// Submits the whole batch asynchronously and waits for all answers.
trait BatchRunner {
    fn label(&self) -> &'static str;
    fn run_batch(&self, kind: &str, scale: &TpcwScale, batch: usize) -> f64;
}

struct SharedRunner(SharedDbSystem);
impl BatchRunner for SharedRunner {
    fn label(&self) -> &'static str {
        "SharedDB"
    }
    fn run_batch(&self, kind: &str, scale: &TpcwScale, batch: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(10);
        let started = Instant::now();
        let handles: Vec<_> = (0..batch)
            .map(|_| {
                self.0
                    .engine()
                    .execute(statement(kind), &params(kind, scale, &mut rng))
                    .expect("submit")
            })
            .collect();
        for h in handles {
            let _ = h.wait();
        }
        started.elapsed().as_secs_f64() * 1e3
    }
}

struct BaselineRunner(BaselineSystem, &'static str);
impl BatchRunner for BaselineRunner {
    fn label(&self) -> &'static str {
        self.1
    }
    fn run_batch(&self, kind: &str, scale: &TpcwScale, batch: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(10);
        let started = Instant::now();
        let handles: Vec<_> = (0..batch)
            .map(|_| {
                self.0
                    .engine()
                    .execute(statement(kind), &params(kind, scale, &mut rng))
                    .expect("submit")
            })
            .collect();
        for h in handles {
            let _ = h.wait();
        }
        started.elapsed().as_secs_f64() * 1e3
    }
}

fn main() {
    let scale = bench_scale();
    let cores = env_usize("FIG10_CORES", 24);

    eprintln!("# fig10: items={}, cores={cores}", scale.items);
    print_header(&[
        "query",
        "system",
        "batch_size",
        "batch_response_time_ms",
        "timeout_ms",
    ]);

    let runners: Vec<Box<dyn BatchRunner>> = vec![
        Box::new(BaselineRunner(
            BaselineSystem::new(
                Arc::new(build_catalog(&scale).unwrap()),
                EngineProfile::Basic,
                cores,
            ),
            "MySQL-like",
        )),
        Box::new(BaselineRunner(
            BaselineSystem::new(
                Arc::new(build_catalog(&scale).unwrap()),
                EngineProfile::Tuned,
                cores,
            ),
            "SystemX-like",
        )),
        Box::new(SharedRunner(
            SharedDbSystem::new(
                Arc::new(build_catalog(&scale).unwrap()),
                EngineConfig::with_cores(cores),
            )
            .unwrap(),
        )),
    ];

    for kind in ["SearchItemByTitle", "BestSellers"] {
        let timeout = if kind == "BestSellers" { 5_000 } else { 3_000 };
        for runner in &runners {
            for &batch in &batch_points() {
                let elapsed_ms = runner.run_batch(kind, &scale, batch);
                println!(
                    "{},{},{},{:.1},{}",
                    kind,
                    runner.label(),
                    batch,
                    elapsed_ms,
                    timeout,
                );
            }
        }
    }
}

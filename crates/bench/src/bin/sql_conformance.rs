//! CI SQL-conformance gate: compiles and executes the checked-in corpus
//! (`tests/sql_corpus/`) against its expected results and exits 1 on any
//! drift. With `--explain` it instead checks the EXPLAIN golden set: every
//! positive case's rendered plan text (operator subtree + sharing sets)
//! against `explain.golden` in the corpus directory. See
//! `shareddb_bench::conformance` for the file format and the fixed dataset.
//!
//! ```text
//! sql_conformance [--corpus tests/sql_corpus] [--explain]
//! ```

use std::path::PathBuf;

fn main() {
    let mut corpus = PathBuf::from("tests/sql_corpus");
    let mut explain = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => {
                corpus = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--corpus needs PATH");
                    std::process::exit(2);
                }))
            }
            "--explain" => explain = true,
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: sql_conformance [--corpus PATH] [--explain]");
                std::process::exit(2);
            }
        }
    }
    let outcome = if explain {
        shareddb_bench::conformance::run_explain_golden(&corpus)
    } else {
        shareddb_bench::conformance::run_corpus(&corpus)
    };
    match outcome {
        Err(message) => {
            eprintln!("corpus run failed: {message}");
            std::process::exit(2);
        }
        Ok(report) => {
            for name in &report.passed {
                println!("PASS {name}");
            }
            for failure in &report.failures {
                println!("FAIL {failure}");
            }
            println!(
                "{} passed, {} failed",
                report.passed.len(),
                report.failures.len()
            );
            if !report.ok() {
                std::process::exit(1);
            }
        }
    }
}

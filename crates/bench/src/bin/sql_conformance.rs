//! CI SQL-conformance gate: compiles and executes the checked-in corpus
//! (`tests/sql_corpus/`) against its expected results and exits 1 on any
//! drift. See `shareddb_bench::conformance` for the file format and the
//! fixed dataset.
//!
//! ```text
//! sql_conformance [--corpus tests/sql_corpus]
//! ```

use std::path::PathBuf;

fn main() {
    let mut corpus = PathBuf::from("tests/sql_corpus");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => {
                corpus = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--corpus needs PATH");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: sql_conformance [--corpus PATH]");
                std::process::exit(2);
            }
        }
    }
    match shareddb_bench::conformance::run_corpus(&corpus) {
        Err(message) => {
            eprintln!("corpus run failed: {message}");
            std::process::exit(2);
        }
        Ok(report) => {
            for name in &report.passed {
                println!("PASS {name}");
            }
            for failure in &report.failures {
                println!("FAIL {failure}");
            }
            println!(
                "{} passed, {} failed",
                report.passed.len(),
                report.failures.len()
            );
            if !report.ok() {
                std::process::exit(1);
            }
        }
    }
}

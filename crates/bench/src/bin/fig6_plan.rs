//! Figure 6: the global query plan compiled for the TPC-W benchmark.
//!
//! Prints the operator graph, an operator census, and the sharing map
//! (which statements activate which shared operators).

use shareddb_bench::bench_scale;
use shareddb_tpcw::{build_catalog, build_shared_plan, statement_names};

fn main() {
    let scale = bench_scale();
    let catalog = build_catalog(&scale).expect("build TPC-W catalog");
    let (plan, registry) = build_shared_plan(&catalog).expect("build global plan");

    println!("== TPC-W global query plan (Figure 6) ==");
    println!("{}", plan.render());

    println!("== Operator census ==");
    let mut census: Vec<(String, usize)> = plan.operator_census().into_iter().collect();
    census.sort();
    let mut total = 0;
    for (label, count) in &census {
        println!("{label:<28} {count}");
        total += count;
    }
    println!("total operators: {total} (paper: 26 operators + 9 base-table access paths)");

    println!();
    println!("== Sharing map: statement -> activated operators ==");
    for name in statement_names() {
        if let Ok((_, spec)) = registry.get(name) {
            let ops: Vec<String> = spec
                .activations
                .iter()
                .map(|(op, _)| plan.node(*op).name.clone())
                .collect();
            let kind = if spec.is_update() { "update" } else { "query" };
            println!("{name:<22} [{kind}] {}", ops.join(" -> "));
        }
    }

    println!();
    println!("== Operators shared by more than one statement type ==");
    for node in plan.nodes() {
        let users: Vec<&str> = registry
            .iter()
            .filter(|s| s.activations.iter().any(|(op, _)| *op == node.id))
            .map(|s| s.name.as_str())
            .collect();
        if users.len() > 1 {
            println!(
                "{:<28} shared by {} statements: {}",
                node.name,
                users.len(),
                users.join(", ")
            );
        }
    }
}

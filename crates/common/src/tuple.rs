//! Row representation.
//!
//! Tuples are plain vectors of [`Value`]s. The engine moves tuples between
//! operators in *vectors* (batches) following the vectorised execution model
//! referenced in Section 3.2 of the paper; the batch container lives in
//! `shareddb-core`, this module only defines the per-row type.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A single row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates an empty tuple.
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values (used by updates in the storage layer).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consumes the tuple and returns the underlying vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Returns the value at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Concatenates two tuples (the output of a join).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Returns a tuple consisting of the selected column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Approximate heap footprint in bytes (used by memory accounting).
    pub fn heap_size(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<Value>()
            + self.values.iter().map(Value::heap_size).sum::<usize>()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Builds a [`Tuple`] from a heterogeneous list of values.
///
/// ```
/// use shareddb_common::{tuple, Value};
/// let t = tuple![1i64, "alice", 2.5f64];
/// assert_eq!(t[1], Value::text("alice"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1i64, "bob", 3.5f64];
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(1), Some(&Value::text("bob")));
        assert_eq!(t.get(9), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1i64, "x"];
        let b = tuple![2i64];
        let c = a.concat(&b);
        assert_eq!(
            c.values(),
            &[Value::Int(1), Value::text("x"), Value::Int(2)]
        );
    }

    #[test]
    fn project_reorders() {
        let t = tuple![10i64, 20i64, 30i64];
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let t = tuple![1i64, "a"];
        assert_eq!(t.to_string(), "[1, 'a']");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ordering_is_lexicographic_over_values() {
        assert!(tuple![1i64, 2i64] < tuple![1i64, 3i64]);
        assert!(tuple![1i64] < tuple![1i64, 0i64]);
    }
}

//! Stable horizontal partitioning of rows.

use crate::tuple::Tuple;
use crate::value::{hash_values, Value};

/// Deterministic horizontal partition of a row: a stable FNV-1a hash
/// ([`hash_values`]) of the row's key values (`key_columns`; the whole tuple
/// when empty) modulo `of`. Every consumer computes the same partition for
/// the same row, which is what lets one execution be split over disjoint
/// row partitions and recombined — at cluster level (engine replicas each
/// scanning one `(index, of)` slice, paper §4.5) and inside one engine
/// (`scan_segments` row segments of one shared scan).
///
/// Hashing the *key* (not the full tuple) keeps a row's partition stable
/// under updates to non-key columns even without a pinned snapshot. Both
/// partitioning levels additionally pin every partition of one execution to
/// a single MVCC snapshot, which makes partitioning by *any* column set
/// exactly-once — this is what lets co-partitioned join fanout hash a
/// non-key join column.
pub fn tuple_partition(tuple: &Tuple, key_columns: &[usize], of: u32) -> u32 {
    if of <= 1 {
        return 0;
    }
    let values = tuple.values();
    let hash = if key_columns.is_empty() {
        hash_values(0, values)
    } else {
        let key: Vec<Value> = key_columns
            .iter()
            .filter_map(|&c| values.get(c).cloned())
            .collect();
        hash_values(0, &key)
    };
    (hash % of as u64) as u32
}

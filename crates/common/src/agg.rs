//! Aggregate functions and accumulators.
//!
//! The shared group-by operator (Section 3.4) runs in two phases: a *shared*
//! grouping phase over the union of all interested tuples, followed by a
//! per-query phase that applies HAVING predicates and aggregation functions.
//! The accumulators in this module implement that second phase.

use crate::error::{Error, Result};
use crate::value::Value;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `COUNT(*)` / `COUNT(expr)` — number of (non-null) inputs.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl AggregateFunction {
    /// Parses the SQL name of an aggregate function.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunction::Count),
            "SUM" => Some(AggregateFunction::Sum),
            "MIN" => Some(AggregateFunction::Min),
            "MAX" => Some(AggregateFunction::Max),
            "AVG" => Some(AggregateFunction::Avg),
            _ => None,
        }
    }

    /// Creates a fresh accumulator for the function.
    pub fn accumulator(self) -> Accumulator {
        Accumulator::new(self)
    }

    /// The SQL name of the function.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Avg => "AVG",
        }
    }
}

/// Incremental state of one aggregate over one group (and, in SharedDB, for
/// one query — aggregation is per-query even when grouping is shared).
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    function: AggregateFunction,
    count: u64,
    sum: f64,
    /// True when every summed input so far was an integer (affects the output
    /// type of SUM/AVG).
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new(function: AggregateFunction) -> Self {
        Accumulator {
            function,
            count: 0,
            sum: 0.0,
            int_only: true,
            min: None,
            max: None,
        }
    }

    /// The function this accumulator computes.
    pub fn function(&self) -> AggregateFunction {
        self.function
    }

    /// Folds one input value into the accumulator. NULL inputs are ignored,
    /// per SQL semantics (except that `COUNT(*)` is modelled by feeding a
    /// non-null literal).
    pub fn update(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.function {
            AggregateFunction::Count => {}
            AggregateFunction::Sum | AggregateFunction::Avg => {
                match value {
                    Value::Int(i) => self.sum += *i as f64,
                    Value::Float(f) => {
                        self.sum += *f;
                        self.int_only = false;
                    }
                    Value::Date(d) => self.sum += *d as f64,
                    other => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: format!("{other:?}"),
                        })
                    }
                };
            }
            AggregateFunction::Min => {
                if self.min.as_ref().map(|m| value < m).unwrap_or(true) {
                    self.min = Some(value.clone());
                }
            }
            AggregateFunction::Max => {
                if self.max.as_ref().map(|m| value > m).unwrap_or(true) {
                    self.max = Some(value.clone());
                }
            }
        }
        Ok(())
    }

    /// Merges another accumulator of the same function (used by partitioned /
    /// replicated operators, Section 4.5).
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.function, other.function);
        self.count += other.count;
        self.sum += other.sum;
        self.int_only &= other.int_only;
        if let Some(m) = &other.min {
            if self.min.as_ref().map(|cur| m < cur).unwrap_or(true) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().map(|cur| m > cur).unwrap_or(true) {
                self.max = Some(m.clone());
            }
        }
    }

    /// Number of non-null inputs folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The partial sum of an AVG accumulator, as shipped between partitions
    /// of a fanned-out aggregate: `Float(sum)` (or `Null` with no inputs).
    /// The merge step divides the recombined sum by the recombined count, so
    /// partial averages never lose precision to intermediate division.
    pub fn partial_sum(&self) -> Value {
        if self.count == 0 {
            Value::Null
        } else {
            Value::Float(self.sum)
        }
    }

    /// Produces the final aggregate value.
    pub fn finish(&self) -> Value {
        match self.function {
            AggregateFunction::Count => Value::Int(self.count as i64),
            AggregateFunction::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggregateFunction::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggregateFunction::Min => self.min.clone().unwrap_or(Value::Null),
            AggregateFunction::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: AggregateFunction, values: &[Value]) -> Value {
        let mut acc = f.accumulator();
        for v in values {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_ignores_nulls() {
        let v = run(
            AggregateFunction::Count,
            &[Value::Int(1), Value::Null, Value::Int(3)],
        );
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn sum_int_and_float() {
        assert_eq!(
            run(AggregateFunction::Sum, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(
            run(AggregateFunction::Sum, &[Value::Int(1), Value::Float(2.5)]),
            Value::Float(3.5)
        );
        assert_eq!(run(AggregateFunction::Sum, &[]), Value::Null);
        assert_eq!(run(AggregateFunction::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn avg_minmax() {
        assert_eq!(
            run(AggregateFunction::Avg, &[Value::Int(1), Value::Int(3)]),
            Value::Float(2.0)
        );
        assert_eq!(
            run(
                AggregateFunction::Min,
                &[Value::text("b"), Value::text("a"), Value::Null]
            ),
            Value::text("a")
        );
        assert_eq!(
            run(AggregateFunction::Max, &[Value::Int(4), Value::Int(9)]),
            Value::Int(9)
        );
        assert_eq!(run(AggregateFunction::Min, &[]), Value::Null);
    }

    #[test]
    fn sum_rejects_text() {
        let mut acc = AggregateFunction::Sum.accumulator();
        assert!(acc.update(&Value::text("x")).is_err());
    }

    #[test]
    fn merge_combines_partitions() {
        let mut a = AggregateFunction::Avg.accumulator();
        let mut b = AggregateFunction::Avg.accumulator();
        for v in [1i64, 2, 3] {
            a.update(&Value::Int(v)).unwrap();
        }
        for v in [5i64, 7] {
            b.update(&Value::Int(v)).unwrap();
        }
        a.merge(&b);
        assert_eq!(a.finish(), Value::Float(18.0 / 5.0));

        let mut mn = AggregateFunction::Min.accumulator();
        let mut mn2 = AggregateFunction::Min.accumulator();
        mn.update(&Value::Int(4)).unwrap();
        mn2.update(&Value::Int(2)).unwrap();
        mn.merge(&mn2);
        assert_eq!(mn.finish(), Value::Int(2));
    }

    #[test]
    fn name_roundtrip() {
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
        ] {
            assert_eq!(AggregateFunction::from_name(f.name()), Some(f));
        }
        assert_eq!(AggregateFunction::from_name("median"), None);
    }
}

//! Scalar expressions and predicates.
//!
//! Expressions are shared between the SQL front end, the storage layer's
//! predicate index (ClockScan indexes *query predicates* instead of data,
//! Section 4.4) and the shared operators. They support prepared-statement
//! parameters (`?`), which is how SharedDB models workloads: the TPC-W
//! implementation is "about thirty different JDBC PreparedStatements executed
//! with different parameter settings" (Section 2).

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for comparison operators that yield booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Mirror of a comparison: `a op b` is equivalent to `b op.flip() a`.
    pub fn flip(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Numeric negation.
    Neg,
    /// `IS NULL`
    IsNull,
    /// `IS NOT NULL`
    IsNotNull,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A column resolved to an index into the input tuple.
    Column(usize),
    /// A column referenced by (optional qualifier, name); must be resolved
    /// against a [`Schema`] before evaluation.
    NamedColumn {
        /// Table name or alias, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// A prepared-statement parameter (`?`), identified by its position.
    Param(usize),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// SQL `LIKE` with `%` and `_` wildcards.
    Like {
        /// The string expression being matched.
        expr: Box<Expr>,
        /// The pattern (typically a literal or parameter).
        pattern: Box<Expr>,
        /// Negation flag for `NOT LIKE`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// The probe expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// Negation flag for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// The probe expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a resolved column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    /// Shorthand for a named column reference (`"O.DATE"` or `"DATE"`).
    pub fn named(path: &str) -> Expr {
        match path.split_once('.') {
            Some((q, n)) => Expr::NamedColumn {
                qualifier: Some(q.to_ascii_uppercase()),
                name: n.to_ascii_uppercase(),
            },
            None => Expr::NamedColumn {
                qualifier: None,
                name: path.to_ascii_uppercase(),
            },
        }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand for a parameter.
    pub fn param(idx: usize) -> Expr {
        Expr::Param(idx)
    }

    /// Builds `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Builds `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }
    /// Builds `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }
    /// Builds `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }
    /// Builds `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }
    /// Builds `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }
    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }
    /// Builds `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }
    /// Builds `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }
    /// Builds `self LIKE pattern`.
    pub fn like(self, pattern: Expr) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: Box::new(pattern),
            negated: false,
        }
    }

    /// Conjunction of a list of predicates; `TRUE` when the list is empty.
    pub fn conjunction(preds: Vec<Expr>) -> Expr {
        let mut iter = preds.into_iter();
        match iter.next() {
            None => Expr::Literal(Value::Bool(true)),
            Some(first) => iter.fold(first, |acc, p| acc.and(p)),
        }
    }

    /// Splits a predicate into its top-level conjuncts.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinaryOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Resolves all [`Expr::NamedColumn`] references against a schema,
    /// returning a copy that only contains [`Expr::Column`] references.
    pub fn resolve(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            Expr::NamedColumn { qualifier, name } => {
                Expr::Column(schema.resolve(qualifier.as_deref(), name)?)
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.resolve(schema)?),
                right: Box::new(right.resolve(schema)?),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.resolve(schema)?),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.resolve(schema)?),
                pattern: Box::new(pattern.resolve(schema)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.resolve(schema)?),
                list: list
                    .iter()
                    .map(|e| e.resolve(schema))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.resolve(schema)?),
                low: Box::new(low.resolve(schema)?),
                high: Box::new(high.resolve(schema)?),
            },
        })
    }

    /// Substitutes parameters with concrete values, producing a *bound*
    /// expression. This is what happens when a client executes a prepared
    /// statement with a parameter vector.
    pub fn bind(&self, params: &[Value]) -> Result<Expr> {
        Ok(match self {
            Expr::Param(i) => Expr::Literal(
                params
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| Error::InvalidParameter(format!("missing parameter ${i}")))?,
            ),
            Expr::Column(_) | Expr::NamedColumn { .. } | Expr::Literal(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(params)?),
                right: Box::new(right.bind(params)?),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.bind(params)?),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind(params)?),
                pattern: Box::new(pattern.bind(params)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.bind(params)?),
                list: list.iter().map(|e| e.bind(params)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.bind(params)?),
                low: Box::new(low.bind(params)?),
                high: Box::new(high.bind(params)?),
            },
        })
    }

    /// Returns all column indices referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// True when the expression contains no parameter placeholders.
    pub fn is_bound(&self) -> bool {
        let mut bound = true;
        self.visit(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                bound = false;
            }
        });
        bound
    }

    /// Visits every node of the expression tree.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between { expr, low, high } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Column(_) | Expr::NamedColumn { .. } | Expr::Literal(_) | Expr::Param(_) => {}
        }
    }

    /// If the expression is a simple `column <op> literal` (or the mirrored
    /// `literal <op> column`) comparison, returns `(column, op, literal)`
    /// normalised so the column is on the left. This is the shape the
    /// ClockScan predicate index understands.
    pub fn as_column_literal_cmp(&self) -> Option<(usize, BinaryOp, &Value)> {
        if let Expr::Binary { op, left, right } = self {
            if !op.is_comparison() {
                return None;
            }
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => Some((*c, *op, v)),
                (Expr::Literal(v), Expr::Column(c)) => Some((*c, op.flip(), v)),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Evaluates the expression against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Column(i) => tuple
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Internal(format!("column index {i} out of bounds"))),
            Expr::NamedColumn { qualifier, name } => Err(Error::Internal(format!(
                "unresolved column reference {}{name}",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => Err(Error::InvalidParameter(format!("unbound parameter ${i}"))),
            Expr::Binary { op, left, right } => {
                eval_binary(*op, &left.eval(tuple)?, &right.eval(tuple)?)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(tuple)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(Error::TypeMismatch {
                            expected: "Bool".into(),
                            found: format!("{other:?}"),
                        }),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(Error::TypeMismatch {
                            expected: "numeric".into(),
                            found: format!("{other:?}"),
                        }),
                    },
                    UnaryOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnaryOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                let p = pattern.eval(tuple)?;
                match (&v, &p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(pat)) => {
                        let m = like_match(s, pat);
                        Ok(Value::Bool(if *negated { !m } else { m }))
                    }
                    _ => Err(Error::TypeMismatch {
                        expected: "Text LIKE Text".into(),
                        found: format!("{v:?} LIKE {p:?}"),
                    }),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let iv = item.eval(tuple)?;
                    if v.sql_eq(&iv) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(if *negated { !found } else { found }))
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(tuple)?;
                let lo = low.eval(tuple)?;
                let hi = high.eval(tuple)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        Ok(Value::Bool(a != Ordering::Less && b != Ordering::Greater))
                    }
                    _ => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluates the expression as a predicate: NULL and FALSE both reject the
    /// tuple (SQL WHERE semantics).
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(Error::TypeMismatch {
                expected: "Bool".into(),
                found: format!("{other:?}"),
            }),
        }
    }
}

fn eval_binary(op: BinaryOp, left: &Value, right: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => match (left, right) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Ok(Value::Bool(false)),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a && *b)),
            _ => Err(Error::TypeMismatch {
                expected: "Bool AND Bool".into(),
                found: format!("{left:?} AND {right:?}"),
            }),
        },
        Or => match (left, right) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Ok(Value::Bool(true)),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a || *b)),
            _ => Err(Error::TypeMismatch {
                expected: "Bool OR Bool".into(),
                found: format!("{left:?} OR {right:?}"),
            }),
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = left.sql_cmp(right);
            Ok(match cmp {
                None => Value::Null,
                Some(ord) => Value::Bool(match op {
                    Eq => ord == Ordering::Equal,
                    NotEq => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    LtEq => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    GtEq => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        Add | Sub | Mul | Div => {
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic when both sides are integers, float otherwise.
            match (left, right) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let a = left.as_float()?;
                    let b = right.as_float()?;
                    Ok(match op {
                        Add => Value::Float(a + b),
                        Sub => Value::Float(a - b),
                        Mul => Value::Float(a * b),
                        Div => {
                            if b == 0.0 {
                                Value::Null
                            } else {
                                Value::Float(a / b)
                            }
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
    }
}

/// SQL `LIKE` matching with `%` (any sequence) and `_` (any single character).
/// Matching is case-sensitive, as in the TPC-W reference implementation.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Try every split point; also allows %% sequences.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::NamedColumn { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "${i}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::IsNull => write!(f, "({expr} IS NULL)"),
                UnaryOp::IsNotNull => write!(f, "({expr} IS NOT NULL)"),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high } => write!(f, "({expr} BETWEEN {low} AND {high})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::tuple;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("ID", crate::DataType::Int).with_qualifier("R"),
            Column::new("NAME", crate::DataType::Text).with_qualifier("R"),
            Column::nullable("PRICE", crate::DataType::Float).with_qualifier("R"),
        ])
    }

    #[test]
    fn comparisons() {
        let t = tuple![5i64, "abc", 10.5f64];
        assert!(Expr::col(0).gt(Expr::lit(3i64)).eval_predicate(&t).unwrap());
        assert!(!Expr::col(0).gt(Expr::lit(5i64)).eval_predicate(&t).unwrap());
        assert!(Expr::col(0)
            .gt_eq(Expr::lit(5i64))
            .eval_predicate(&t)
            .unwrap());
        assert!(Expr::col(1)
            .eq(Expr::lit("abc"))
            .eval_predicate(&t)
            .unwrap());
        assert!(Expr::col(2)
            .lt(Expr::lit(11i64))
            .eval_predicate(&t)
            .unwrap());
    }

    #[test]
    fn null_comparisons_reject() {
        let t = tuple![5i64, "abc"];
        let null_cmp = Expr::col(0).eq(Expr::lit(Value::Null));
        assert_eq!(null_cmp.eval(&t).unwrap(), Value::Null);
        assert!(!null_cmp.eval_predicate(&t).unwrap());
    }

    #[test]
    fn boolean_logic_three_valued() {
        let t = tuple![1i64];
        let tru = Expr::lit(true);
        let fls = Expr::lit(false);
        let nul = Expr::lit(Value::Null);
        assert!(tru.clone().and(tru.clone()).eval_predicate(&t).unwrap());
        assert!(!tru.clone().and(fls.clone()).eval_predicate(&t).unwrap());
        // NULL AND FALSE = FALSE, NULL AND TRUE = NULL.
        assert_eq!(
            nul.clone().and(fls.clone()).eval(&t).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(nul.clone().and(tru.clone()).eval(&t).unwrap(), Value::Null);
        assert_eq!(
            nul.clone().or(tru.clone()).eval(&t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(nul.clone().or(fls).eval(&t).unwrap(), Value::Null);
        assert_eq!(nul.not().eval(&t).unwrap(), Value::Null);
        assert!(!tru.not().eval_predicate(&t).unwrap());
    }

    #[test]
    fn arithmetic() {
        let t = tuple![7i64, "x", 2.5f64];
        assert_eq!(
            Expr::col(0)
                .binary(BinaryOp::Add, Expr::lit(3i64))
                .eval(&t)
                .unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            Expr::col(0)
                .binary(BinaryOp::Mul, Expr::col(2))
                .eval(&t)
                .unwrap(),
            Value::Float(17.5)
        );
        assert_eq!(
            Expr::col(0)
                .binary(BinaryOp::Div, Expr::lit(0i64))
                .eval(&t)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::lit(1i64)
                .binary(BinaryOp::Sub, Expr::lit(Value::Null))
                .eval(&t)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn like_matching() {
        assert!(like_match("SharedDB", "Shared%"));
        assert!(like_match("SharedDB", "%DB"));
        assert!(like_match("SharedDB", "%are%"));
        assert!(like_match("SharedDB", "S_aredDB"));
        assert!(like_match("", "%"));
        assert!(!like_match("SharedDB", "shared%")); // case sensitive
        assert!(!like_match("SharedDB", "_"));
        assert!(like_match("a%b", "a\u{25}b")); // literal percent matches itself via %
    }

    #[test]
    fn like_expression_and_negation() {
        let t = tuple![1i64, "THE TITLE OF A BOOK"];
        let e = Expr::col(1).like(Expr::lit("%TITLE%"));
        assert!(e.eval_predicate(&t).unwrap());
        let ne = Expr::Like {
            expr: Box::new(Expr::col(1)),
            pattern: Box::new(Expr::lit("%TITLE%")),
            negated: true,
        };
        assert!(!ne.eval_predicate(&t).unwrap());
    }

    #[test]
    fn in_list_and_between() {
        let t = tuple![5i64];
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Expr::lit(1i64), Expr::lit(5i64)],
            negated: false,
        };
        assert!(e.eval_predicate(&t).unwrap());
        let e = Expr::Between {
            expr: Box::new(Expr::col(0)),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(5i64)),
        };
        assert!(e.eval_predicate(&t).unwrap());
        let e = Expr::Between {
            expr: Box::new(Expr::col(0)),
            low: Box::new(Expr::lit(6i64)),
            high: Box::new(Expr::lit(9i64)),
        };
        assert!(!e.eval_predicate(&t).unwrap());
    }

    #[test]
    fn is_null_checks() {
        let t = tuple![Value::Null, Value::Int(1)];
        let isnull = Expr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(Expr::col(0)),
        };
        assert!(isnull.eval_predicate(&t).unwrap());
        let notnull = Expr::Unary {
            op: UnaryOp::IsNotNull,
            expr: Box::new(Expr::col(1)),
        };
        assert!(notnull.eval_predicate(&t).unwrap());
    }

    #[test]
    fn bind_parameters() {
        let e = Expr::col(0)
            .eq(Expr::param(0))
            .and(Expr::col(1).like(Expr::param(1)));
        assert!(!e.is_bound());
        let bound = e.bind(&[Value::Int(3), Value::text("%x%")]).unwrap();
        assert!(bound.is_bound());
        assert!(bound.eval_predicate(&tuple![3i64, "axb"]).unwrap());
        assert!(!bound.eval_predicate(&tuple![4i64, "axb"]).unwrap());
        // Missing parameter is an error.
        assert!(e.bind(&[Value::Int(3)]).is_err());
        // Evaluating an unbound parameter is an error.
        assert!(Expr::param(0).eval(&tuple![1i64]).is_err());
    }

    #[test]
    fn resolve_named_columns() {
        let s = schema();
        let e = Expr::named("R.PRICE").gt(Expr::named("ID"));
        let r = e.resolve(&s).unwrap();
        assert_eq!(r, Expr::col(2).gt(Expr::col(0)));
        assert!(Expr::named("MISSING").resolve(&s).is_err());
        // Unresolved named column cannot be evaluated.
        assert!(e.eval(&tuple![1i64, "a", 2.0f64]).is_err());
    }

    #[test]
    fn split_and_rebuild_conjuncts() {
        let e = Expr::col(0)
            .eq(Expr::lit(1i64))
            .and(Expr::col(1).gt(Expr::lit(2i64)))
            .and(Expr::col(2).lt(Expr::lit(3i64)));
        assert_eq!(e.split_conjuncts().len(), 3);
        let rebuilt = Expr::conjunction(e.split_conjuncts().into_iter().cloned().collect());
        assert_eq!(rebuilt, e);
        assert_eq!(Expr::conjunction(vec![]), Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn column_literal_extraction_normalises() {
        let e = Expr::col(3).gt(Expr::lit(10i64));
        assert_eq!(
            e.as_column_literal_cmp(),
            Some((3, BinaryOp::Gt, &Value::Int(10)))
        );
        let mirrored = Expr::lit(10i64).gt(Expr::col(3));
        assert_eq!(
            mirrored.as_column_literal_cmp(),
            Some((3, BinaryOp::Lt, &Value::Int(10)))
        );
        let not_simple = Expr::col(1).eq(Expr::col(2));
        assert_eq!(not_simple.as_column_literal_cmp(), None);
    }

    #[test]
    fn referenced_columns_are_sorted_unique() {
        let e = Expr::col(3)
            .gt(Expr::col(1))
            .and(Expr::col(3).eq(Expr::lit(1i64)));
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn display_renders_sql_like_text() {
        let e = Expr::named("O.DATE").gt(Expr::param(0));
        assert_eq!(e.to_string(), "(O.DATE > $0)");
    }
}

//! Hand-rolled CRC-32 (IEEE 802.3, polynomial `0xEDB88320` reflected).
//!
//! The write-ahead log and checkpoint files frame every record with a CRC so
//! that recovery can distinguish a torn tail write from valid data. The
//! implementation is the classic byte-at-a-time table lookup — no crates.io
//! dependency, deterministic across platforms, and fast enough that the WAL
//! stays fsync-bound rather than checksum-bound.
//!
//! The variant here is the one used by zip/gzip/Ethernet: reflected input and
//! output, initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`. The check
//! value of the ASCII bytes `"123456789"` is `0xCBF4_3926`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 state: feed byte slices with [`Crc32::update`], read
/// the digest with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (does not consume the state; more
    /// bytes may still be folded in afterwards).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for this CRC variant.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"shareddb write-ahead log frame payload";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}

//! The data-query model tuple: a relational tuple plus the set of queries
//! interested in it (Section 3.1, Figure 1 of the paper — the "Compact Result
//! Set (NF²)" representation).

use crate::queryset::QuerySet;
use crate::tuple::Tuple;
use crate::QueryId;
use std::fmt;

/// A tuple annotated with its subscribed queries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QTuple {
    /// The relational payload (the "normal" attributes `R_a .. R_n`).
    pub tuple: Tuple,
    /// The set-valued `query_id` attribute.
    pub queries: QuerySet,
}

impl QTuple {
    /// Creates a data-query tuple.
    pub fn new(tuple: Tuple, queries: QuerySet) -> Self {
        QTuple { tuple, queries }
    }

    /// Creates a tuple subscribed to a single query.
    pub fn for_query(tuple: Tuple, query: QueryId) -> Self {
        QTuple {
            tuple,
            queries: QuerySet::singleton(query),
        }
    }

    /// True when no active query is interested in the tuple; such tuples can
    /// be dropped by any operator without affecting results.
    pub fn is_dead(&self) -> bool {
        self.queries.is_empty()
    }

    /// Expands the compact NF² representation into the redundant
    /// first-normal-form representation shown on the left of Figure 1 —
    /// one `(tuple, query)` pair per subscribed query. Only used at the edge
    /// of the system when routing results to clients and in tests.
    pub fn explode(&self) -> impl Iterator<Item = (QueryId, &Tuple)> + '_ {
        self.queries.iter().map(move |q| (q, &self.tuple))
    }

    /// Joins two data-query tuples: concatenates the payloads and intersects
    /// the query sets. Returns `None` when the intersection is empty, i.e.
    /// when no query is interested in the combination (this implements the
    /// `R.query_id = S.query_id` part of the shared join predicate).
    pub fn join(&self, other: &QTuple) -> Option<QTuple> {
        let queries = self.queries.intersect(&other.queries);
        if queries.is_empty() {
            return None;
        }
        Some(QTuple {
            tuple: self.tuple.concat(&other.tuple),
            queries,
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.tuple.heap_size() + self.queries.heap_size()
    }
}

impl fmt::Display for QTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.tuple, self.queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn explode_matches_figure_1() {
        // Row 143 "John Smith" is interesting for queries 1, 2 and 3: the NF²
        // representation stores it once, exploding yields three pairs.
        let t = QTuple::new(
            tuple![143i64, "John Smith"],
            [1u32, 2, 3].into_iter().collect(),
        );
        let pairs: Vec<_> = t.explode().map(|(q, _)| q.raw()).collect();
        assert_eq!(pairs, vec![1, 2, 3]);
    }

    #[test]
    fn join_requires_common_query() {
        let r = QTuple::for_query(tuple![1i64, "r"], QueryId(1));
        let s = QTuple::for_query(tuple![1i64, "s"], QueryId(2));
        // R tuple only relevant for Q1 must not match S tuple only relevant
        // for Q2 (Section 3.3).
        assert!(r.join(&s).is_none());

        let s2 = QTuple::new(tuple![1i64, "s"], [1u32, 2].into_iter().collect());
        let joined = r.join(&s2).unwrap();
        assert_eq!(joined.tuple, tuple![1i64, "r", 1i64, "s"]);
        assert_eq!(joined.queries, QuerySet::singleton(QueryId(1)));
    }

    #[test]
    fn dead_tuples() {
        let t = QTuple::new(tuple![1i64], QuerySet::new());
        assert!(t.is_dead());
        assert!(!QTuple::for_query(tuple![1i64], QueryId(9)).is_dead());
    }
}

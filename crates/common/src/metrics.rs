//! Lock-free metrics primitives: log-bucketed latency histograms, counters
//! and gauges, plus a name-keyed registry that renders Prometheus text
//! exposition.
//!
//! Hand-rolled in the repo's offline style (no crates.io): a histogram is a
//! fixed-size array of `AtomicU64` buckets with power-of-two boundaries, so
//! recording is a couple of relaxed atomic adds — cheap enough to stay
//! always-on in the engine's hot path — and two histograms merge by adding
//! their buckets, which makes per-replica and per-partition statistics
//! aggregate losslessly (the merged percentile is computed from the merged
//! counts, never approximated from pre-computed percentiles).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets. Bucket 0 holds zero-valued observations;
/// bucket `i` (1 ≤ i < BUCKETS−1) holds values in `[2^(i−1), 2^i − 1]`
/// microseconds; the last bucket is the overflow bucket. 40 buckets cover
/// 1 µs .. ~2.3 hours before overflowing.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Upper bound (inclusive, µs) of bucket `i`; `u64::MAX` for the overflow
/// bucket.
pub fn bucket_upper_bound_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A lock-free log-bucketed latency histogram (microsecond resolution).
///
/// Recording touches four relaxed atomics (bucket, count, sum, max); there is
/// no lock anywhere, so operator and coordinator threads record concurrently
/// without contention. The exact maximum is tracked separately so the top
/// percentile never reports a bucket bound above the largest value actually
/// observed.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one duration observation.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation, µs (exact, not a bucket bound).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the requested percentile
    /// (`0.0..=1.0`), clamped to the exact maximum; 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        self.snapshot().percentile_us(p)
    }

    /// Adds another histogram's counts into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_us
            .fetch_max(other.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every bucket and counter to zero. Not atomic with respect to
    /// concurrent recorders — a racing observation may straddle the reset —
    /// but never corrupts the histogram beyond an off-by-a-few count, which
    /// is the standard contract for bench warm-up resets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of the counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and serialisable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper_bound_us`]).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_us: u64,
    /// Exact maximum observation, µs.
    pub max_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, µs.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the requested percentile
    /// (`0.0..=1.0`), clamped to the exact maximum; 0 when empty.
    ///
    /// The clamp makes `percentile_us(1.0)` exactly the maximum, and keeps
    /// every lower percentile from exceeding it — so p50 ≤ p95 ≤ p99 ≤ max
    /// always holds.
    pub fn percentile_us(&self, p: f64) -> u64 {
        // Sum the buckets rather than trusting `count`: a racing recorder may
        // have bumped one before the other was read.
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The window of observations recorded since `earlier`: bucket-wise
    /// saturating subtraction of an older snapshot of the *same* histogram.
    /// Percentiles over the result cover only the window, which is how the
    /// adaptive-heartbeat controller reads a *live* light-query p99 out of
    /// cumulative histograms. `max_us` keeps the cumulative maximum (the
    /// per-window maximum is not recoverable from bucket counts).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (dst, (new, old)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *dst = new.saturating_sub(*old);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_us = self.sum_us.saturating_sub(earlier.sum_us);
        out.max_us = self.max_us;
        out
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A name-keyed registry of counters, gauges and histograms.
///
/// Registration takes a short lock and happens once per metric (callers hold
/// on to the returned `Arc`); recording through the handles is lock-free.
/// Metric names may carry Prometheus-style labels (`name{k="v"}`); the
/// renderer groups series by base name for the `# TYPE` header.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        gauges.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Renders every registered metric in Prometheus text exposition format.
    pub fn render(&self, out: &mut String) {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let mut last_base = "";
        for (name, c) in counters.iter() {
            if base_name(name) != last_base {
                out.push_str(&format!("# TYPE {} counter\n", base_name(name)));
            }
            last_base = base_name(name);
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        drop(counters);
        let gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let mut last_base = "";
        for (name, g) in gauges.iter() {
            if base_name(name) != last_base {
                out.push_str(&format!("# TYPE {} gauge\n", base_name(name)));
            }
            last_base = base_name(name);
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        drop(gauges);
        let histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let mut last_base = "";
        for (name, h) in histograms.iter() {
            if base_name(name) != last_base {
                out.push_str(&format!("# TYPE {} summary\n", base_name(name)));
            }
            last_base = base_name(name);
            render_summary(out, name, &h.snapshot());
        }
    }
}

/// Escapes a string for use inside a Prometheus label value (the text
/// exposition format requires `\`, `"` and newline escaped as `\\`, `\"` and
/// `\n`). Auto-parameterised ad-hoc statement names can carry arbitrary SQL
/// fragments, so every statement/operator label must pass through here.
/// Borrows when no escaping is needed (the overwhelmingly common case).
pub fn escape_label_value(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// Renders one histogram snapshot as a Prometheus summary series
/// (`quantile` labels plus `_sum`, `_count` and a `_max` gauge companion).
/// `name` may already carry labels; quantile labels are merged in.
pub fn render_summary(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let (base, labels) = match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..name.len() - 1].to_string()),
        None => (name, String::new()),
    };
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        out.push_str(&format!(
            "{base}{{{labels}{sep}quantile=\"{label}\"}} {}\n",
            snap.percentile_us(q)
        ));
    }
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{base}_sum{brace} {}\n", snap.sum_us));
    out.push_str(&format!("{base}_count{brace} {}\n", snap.count));
    out.push_str(&format!("{base}_max{brace} {}\n", snap.max_us));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound_us(i) > bucket_upper_bound_us(i - 1));
            // Every value maps into the bucket whose bound we report.
            let bound = bucket_upper_bound_us(i);
            if bound != u64::MAX {
                assert_eq!(bucket_index(bound), i);
                assert_eq!(bucket_index(bound + 1), i + 1);
            }
        }
    }

    #[test]
    fn percentiles_are_exact_on_bucket_bounds_and_monotone() {
        let h = Histogram::new();
        assert_eq!(h.percentile_us(0.99), 0);
        for _ in 0..99 {
            h.record_us(40);
        }
        h.record_us(40_000);
        assert_eq!(h.count(), 100);
        // 40 lands in bucket [32,63]; p50 reports 63. 40_000 lands in
        // [32768,65535]; its bound exceeds the exact max, so p100 is 40_000.
        assert_eq!(h.percentile_us(0.5), 63);
        assert_eq!(h.percentile_us(1.0), 40_000);
        let p50 = h.percentile_us(0.50);
        let p95 = h.percentile_us(0.95);
        let p99 = h.percentile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_us());
    }

    #[test]
    fn merge_equals_single_histogram() {
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        let single = Histogram::new();
        for (i, v) in [3u64, 17, 250, 999, 12_345, 7, 0, 88].iter().enumerate() {
            parts[i % 4].record_us(*v);
            single.record_us(*v);
        }
        let merged = Histogram::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged.snapshot(), single.snapshot());
        // Snapshot-level merge agrees with histogram-level merge.
        let mut snap = HistogramSnapshot::default();
        for p in &parts {
            snap.merge_from(&p.snapshot());
        }
        assert_eq!(snap, single.snapshot());
    }

    #[test]
    fn diff_recovers_the_window() {
        let h = Histogram::new();
        h.record_us(10);
        h.record_us(100);
        let earlier = h.snapshot();
        h.record_us(5000);
        h.record_us(5000);
        h.record_us(6000);
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count, 3);
        assert_eq!(window.counts.iter().sum::<u64>(), 3);
        assert_eq!(window.sum_us, 16_000);
        // The window's percentile reflects only the new observations.
        assert!(window.percentile_us(0.5) >= 4096);
        // Diffing a snapshot against itself is empty.
        assert!(h.snapshot().diff(&h.snapshot()).is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_us(t * 1000 + i % 500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record_us(123);
        h.record_us(456_789);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_us(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.percentile_us(0.99), 0);
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        use std::borrow::Cow;
        // The common case borrows (no allocation on the scrape path).
        assert!(matches!(
            escape_label_value("getItemById"),
            Cow::Borrowed("getItemById")
        ));
        assert_eq!(
            escape_label_value(r#"q_select_"I_TITLE"_from\items"#),
            r#"q_select_\"I_TITLE\"_from\\items"#
        );
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn registry_reuses_handles_and_renders() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("requests_total");
        let c2 = reg.counter("requests_total");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        reg.gauge("sessions").set(5);
        reg.histogram("latency_us{phase=\"execute\"}")
            .record_us(100);
        let mut out = String::new();
        reg.render(&mut out);
        assert!(out.contains("# TYPE requests_total counter"));
        assert!(out.contains("requests_total 3"));
        assert!(out.contains("sessions 5"));
        assert!(out.contains("# TYPE latency_us summary"));
        assert!(out.contains("latency_us{phase=\"execute\",quantile=\"0.99\"}"));
        assert!(out.contains("latency_us_count{phase=\"execute\"} 1"));
    }
}

//! Columns, schemas and name resolution.
//!
//! Schemas in SharedDB describe both base tables and intermediate results.
//! Join operators concatenate schemas; columns keep an optional *qualifier*
//! (the table or alias they originate from) so that `O.ITEM_ID` and
//! `I.ITEM_ID` stay distinguishable after a join.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A single column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Optional qualifier: table name or alias (upper-cased).
    pub qualifier: Option<String>,
    /// Column name (upper-cased).
    pub name: String,
    /// Data type of the column.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// Creates a non-nullable column without a qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            qualifier: None,
            name: name.into().to_ascii_uppercase(),
            data_type,
            nullable: false,
        }
    }

    /// Creates a nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            nullable: true,
            ..Column::new(name, data_type)
        }
    }

    /// Returns a copy of the column with the given qualifier attached.
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        self.qualifier = Some(qualifier.into().to_ascii_uppercase());
        self
    }

    /// Fully qualified name (`QUALIFIER.NAME` or just `NAME`).
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// True if the column matches a (possibly qualified) reference.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|cq| cq.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }

    /// Checks that a value is admissible for this column (type and
    /// nullability).
    pub fn check_value(&self, value: &Value) -> Result<()> {
        match value.data_type() {
            None => {
                if self.nullable {
                    Ok(())
                } else {
                    Err(Error::ConstraintViolation(format!(
                        "column {} is NOT NULL",
                        self.qualified_name()
                    )))
                }
            }
            Some(dt) => {
                let compatible = dt == self.data_type
                    || matches!(
                        (dt, self.data_type),
                        (DataType::Int, DataType::Float)
                            | (DataType::Float, DataType::Int)
                            | (DataType::Int, DataType::Date)
                            | (DataType::Date, DataType::Int)
                    );
                if compatible {
                    Ok(())
                } else {
                    Err(Error::TypeMismatch {
                        expected: self.data_type.to_string(),
                        found: dt.to_string(),
                    })
                }
            }
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)?;
        if self.nullable {
            write!(f, " NULL")?;
        }
        Ok(())
    }
}

/// An ordered list of columns.
///
/// Schemas are cheaply clonable (`Arc` internally) because every tuple batch
/// flowing between operators references the schema of its producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Creates a schema from a list of columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: Arc::new(columns),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns of the schema.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Returns the column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolves a (possibly qualified) column reference to its index.
    ///
    /// Resolution is case-insensitive. An unqualified name that matches more
    /// than one column is ambiguous and reported as an error.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if found.is_some() {
                    return Err(Error::UnknownColumn(format!(
                        "ambiguous column reference: {name}"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            Err::<usize, _>(()).ok();
            Error::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })
        })
    }

    /// Resolves a dotted reference such as `"O.ITEM_ID"` or `"ITEM_ID"`.
    pub fn resolve_path(&self, path: &str) -> Result<usize> {
        match path.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, path),
        }
    }

    /// Returns a new schema with every column qualified by `alias`.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .cloned()
                .map(|c| c.with_qualifier(alias))
                .collect(),
        )
    }

    /// Concatenates two schemas (the schema of a join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.len() + other.len());
        cols.extend(self.columns.iter().cloned());
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Returns a schema consisting of the selected column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Validates a full tuple of values against the schema.
    pub fn check_tuple(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.len() {
            return Err(Error::ConstraintViolation(format!(
                "expected {} values, got {}",
                self.len(),
                values.len()
            )));
        }
        for (c, v) in self.columns.iter().zip(values) {
            c.check_value(v)?;
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_schema() -> Schema {
        Schema::new(vec![
            Column::new("USER_ID", DataType::Int).with_qualifier("USERS"),
            Column::new("USERNAME", DataType::Text).with_qualifier("USERS"),
            Column::nullable("COUNTRY", DataType::Text).with_qualifier("USERS"),
        ])
    }

    #[test]
    fn resolve_by_name_and_qualifier() {
        let s = users_schema();
        assert_eq!(s.resolve(None, "username").unwrap(), 1);
        assert_eq!(s.resolve(Some("users"), "USER_ID").unwrap(), 0);
        assert!(s.resolve(Some("ORDERS"), "USER_ID").is_err());
        assert!(s.resolve(None, "MISSING").is_err());
    }

    #[test]
    fn resolve_path_handles_dots() {
        let s = users_schema();
        assert_eq!(s.resolve_path("USERS.COUNTRY").unwrap(), 2);
        assert_eq!(s.resolve_path("COUNTRY").unwrap(), 2);
    }

    #[test]
    fn ambiguous_reference_is_error() {
        let s = users_schema().join(&users_schema().qualified("U2"));
        // Unqualified USER_ID appears twice -> ambiguous.
        assert!(s.resolve(None, "USER_ID").is_err());
        // Qualified lookups still work.
        assert_eq!(s.resolve(Some("U2"), "USER_ID").unwrap(), 3);
    }

    #[test]
    fn join_concatenates() {
        let a = users_schema();
        let b = Schema::new(vec![
            Column::new("ORDER_ID", DataType::Int).with_qualifier("ORDERS"),
            Column::new("USER_ID", DataType::Int).with_qualifier("ORDERS"),
        ]);
        let j = a.join(&b);
        assert_eq!(j.len(), 5);
        assert_eq!(j.resolve(Some("ORDERS"), "USER_ID").unwrap(), 4);
    }

    #[test]
    fn project_selects_columns() {
        let s = users_schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).name, "COUNTRY");
        assert_eq!(p.column(1).name, "USER_ID");
    }

    #[test]
    fn check_tuple_validates_arity_types_nulls() {
        let s = users_schema();
        assert!(s
            .check_tuple(&[Value::Int(1), Value::text("bob"), Value::Null])
            .is_ok());
        // NULL in a NOT NULL column.
        assert!(s
            .check_tuple(&[Value::Null, Value::text("bob"), Value::Null])
            .is_err());
        // Wrong arity.
        assert!(s.check_tuple(&[Value::Int(1)]).is_err());
        // Wrong type.
        assert!(s
            .check_tuple(&[Value::text("x"), Value::text("bob"), Value::Null])
            .is_err());
    }

    #[test]
    fn int_float_coercion_allowed() {
        let c = Column::new("PRICE", DataType::Float);
        assert!(c.check_value(&Value::Int(10)).is_ok());
        assert!(c.check_value(&Value::Float(9.5)).is_ok());
        assert!(c.check_value(&Value::text("x")).is_err());
    }

    #[test]
    fn display_formats() {
        let s = users_schema();
        let text = s.to_string();
        assert!(text.contains("USERS.USER_ID INT"));
        assert!(text.contains("USERS.COUNTRY TEXT NULL"));
    }

    #[test]
    fn names_are_uppercased() {
        let c = Column::new("lower_name", DataType::Int).with_qualifier("tbl");
        assert_eq!(c.name, "LOWER_NAME");
        assert_eq!(c.qualifier.as_deref(), Some("TBL"));
        assert_eq!(c.qualified_name(), "TBL.LOWER_NAME");
    }
}

//! The common error type used across all SharedDB crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by SharedDB components.
///
/// The error space is deliberately flat: SharedDB is a research engine and
/// callers mostly need to distinguish *user errors* (bad SQL, unknown table,
/// type mismatch) from *engine errors* (an operator panicked, a channel was
/// disconnected, the engine is shutting down).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A SQL statement could not be parsed.
    Parse(String),
    /// A statement referenced an unknown table.
    UnknownTable(String),
    /// A statement referenced an unknown column.
    UnknownColumn(String),
    /// A value had an unexpected type for the requested operation.
    TypeMismatch { expected: String, found: String },
    /// A prepared-statement parameter was missing or had the wrong type.
    InvalidParameter(String),
    /// The query referenced a statement type that is not part of the
    /// compiled global plan (ad-hoc queries must be registered first).
    UnknownStatement(String),
    /// A constraint (primary key, not-null) was violated.
    ConstraintViolation(String),
    /// The engine rejected the request because it is shutting down.
    EngineShutdown,
    /// The request was rejected by admission control because a queue or
    /// session limit was reached; the client may retry after backing off.
    Overloaded(String),
    /// A query exceeded its response-time deadline and was cancelled.
    DeadlineExceeded,
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// Recovery from the write-ahead log failed.
    Recovery(String),
    /// An I/O error (only reported as a rendered string so the error stays
    /// `Clone` + `PartialEq`; the WAL attaches context before converting).
    Io(String),
    /// The requested feature is recognised but not supported by this build.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::UnknownTable(name) => write!(f, "unknown table: {name}"),
            Error::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::UnknownStatement(msg) => write!(f, "unknown statement: {msg}"),
            Error::ConstraintViolation(msg) => write!(f, "constraint violation: {msg}"),
            Error::EngineShutdown => write!(f, "engine is shutting down"),
            Error::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            Error::DeadlineExceeded => write!(f, "deadline exceeded"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
            Error::Recovery(msg) => write!(f, "recovery error: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// True when the request may be retried after backing off (admission
    /// control rejections, not hard failures).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Overloaded(_))
    }

    /// True when the error was caused by the client (bad SQL, bad parameters)
    /// rather than by the engine.
    pub fn is_user_error(&self) -> bool {
        matches!(
            self,
            Error::Parse(_)
                | Error::UnknownTable(_)
                | Error::UnknownColumn(_)
                | Error::TypeMismatch { .. }
                | Error::InvalidParameter(_)
                | Error::UnknownStatement(_)
                | Error::ConstraintViolation(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnknownTable("ITEM".into());
        assert!(e.to_string().contains("ITEM"));
        let e = Error::TypeMismatch {
            expected: "Int".into(),
            found: "Text".into(),
        };
        assert!(e.to_string().contains("Int"));
        assert!(e.to_string().contains("Text"));
    }

    #[test]
    fn user_error_classification() {
        assert!(Error::Parse("x".into()).is_user_error());
        assert!(Error::UnknownColumn("c".into()).is_user_error());
        assert!(!Error::EngineShutdown.is_user_error());
        assert!(!Error::Internal("bug".into()).is_user_error());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}

//! Sort specifications and comparators.
//!
//! Used by the shared sort and Top-N operators (Section 3.4, Figure 4): the
//! sort itself is shared across all queries of a batch, so the comparator must
//! be a property of the *operator*, not of an individual query.

use crate::tuple::Tuple;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Ascending (the SQL default).
    Ascending,
    /// Descending.
    Descending,
}

impl SortOrder {
    /// Applies the direction to an ordering computed in ascending terms.
    #[inline]
    pub fn apply(self, ord: Ordering) -> Ordering {
        match self {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        }
    }
}

/// One `ORDER BY` key: a column index plus a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// Index of the sort column in the input schema.
    pub column: usize,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending key on a column.
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            order: SortOrder::Ascending,
        }
    }

    /// Descending key on a column.
    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            order: SortOrder::Descending,
        }
    }
}

/// Compares two tuples under a list of sort keys. NULLs sort first (ascending)
/// because [`crate::Value`]'s total order places NULL below every value.
pub fn compare_tuples(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = a[key.column].cmp(&b[key.column]);
        let ord = key.order.apply(ord);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sorts a vector of tuples by the given keys (stable sort, so ties keep their
/// arrival order — important for reproducible test expectations).
pub fn sort_tuples(tuples: &mut [Tuple], keys: &[SortKey]) {
    tuples.sort_by(|a, b| compare_tuples(a, b, keys));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn single_key_ascending_descending() {
        let mut ts = vec![tuple![3i64, "c"], tuple![1i64, "a"], tuple![2i64, "b"]];
        sort_tuples(&mut ts, &[SortKey::asc(0)]);
        assert_eq!(ts[0][0], crate::Value::Int(1));
        sort_tuples(&mut ts, &[SortKey::desc(0)]);
        assert_eq!(ts[0][0], crate::Value::Int(3));
    }

    #[test]
    fn multi_key_breaks_ties() {
        let mut ts = vec![tuple![1i64, "b"], tuple![1i64, "a"], tuple![0i64, "z"]];
        sort_tuples(&mut ts, &[SortKey::asc(0), SortKey::asc(1)]);
        assert_eq!(ts[0], tuple![0i64, "z"]);
        assert_eq!(ts[1], tuple![1i64, "a"]);
        assert_eq!(ts[2], tuple![1i64, "b"]);
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let mut ts = vec![tuple![1i64], tuple![crate::Value::Null], tuple![0i64]];
        sort_tuples(&mut ts, &[SortKey::asc(0)]);
        assert_eq!(ts[0], tuple![crate::Value::Null]);
        sort_tuples(&mut ts, &[SortKey::desc(0)]);
        assert_eq!(ts[2], tuple![crate::Value::Null]);
    }

    #[test]
    fn compare_is_equal_when_keys_match() {
        let a = tuple![1i64, "x"];
        let b = tuple![1i64, "y"];
        assert_eq!(compare_tuples(&a, &b, &[SortKey::asc(0)]), Ordering::Equal);
        assert_ne!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::asc(1)]),
            Ordering::Equal
        );
    }
}

//! SQL values and data types.
//!
//! SharedDB keeps all data in main memory (Section 4.4: the Crescando storage
//! manager is a main-memory store); values are therefore plain Rust enums and
//! never reference external buffers.

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The SQL data types supported by the engine.
///
/// The set covers everything the TPC-W schema and the paper's example queries
/// need: integers, floating point numbers, strings, booleans and dates
/// (represented as days since the Unix epoch; timestamps use `Int` seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point number.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single SQL value.
///
/// `Value` implements a *total* ordering (`Ord`) so that it can be used as a
/// sort key and as a B-tree key: `NULL` sorts before everything, floats use
/// IEEE total ordering, and comparing values of different types falls back to
/// a stable type rank. Use [`Value::sql_cmp`] when SQL three-valued comparison
/// semantics (NULL is incomparable) are required.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// Returns the data type of the value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Creates a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Builds a [`Value::Date`] from a `(year, month, day)` triple using a
    /// proleptic Gregorian calendar. Only used by data generators and tests,
    /// so it favours clarity over speed.
    pub fn date_from_ymd(year: i32, month: u32, day: u32) -> Self {
        Value::Date(days_from_civil(year, month, day))
    }

    /// Extracts an `i64`, coercing dates and booleans; errors on other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Date(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(Error::TypeMismatch {
                expected: "Int".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts an `f64`, coercing integers; errors on other types.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::Date(v) => Ok(*v as f64),
            other => Err(Error::TypeMismatch {
                expected: "Float".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts a string slice; errors on non-text values.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                expected: "Text".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts a boolean; errors on other types.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch {
                expected: "Bool".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// SQL comparison: returns `None` when either side is NULL (three-valued
    /// logic), otherwise the ordering. Numeric types are compared after
    /// coercion to `f64` when mixed.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Int(a), Date(b)) | (Date(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) | (Date(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) | (Float(a), Date(b)) => Some(a.total_cmp(&(*b as f64))),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// True when the two values are equal under SQL semantics (NULL never
    /// equals anything, including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// Stable rank used to order values of different types in the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric family shares a rank
            Value::Date(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// Approximate heap size of the value in bytes; used by memory accounting
    /// and the workload generators.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Text(s) => s.capacity(),
            _ => 0,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total ordering: NULL first, then by type rank, then by value. The
    /// numeric family (Int/Float) is compared numerically so that index keys
    /// behave sensibly when literals are written as `10` or `10.0`.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self
                .type_rank()
                .cmp(&other.type_rank())
                .then(Ordering::Equal),
        }
    }
}

/// Stable FNV-1a hash of a value sequence with a caller-chosen seed mixed
/// into the offset basis. This is THE canonical value hashing used for
/// cluster routing (parameter vectors) and horizontal scan partitioning
/// (row keys): both sides must agree byte-for-byte, so neither reimplements
/// it. Unlike the [`Hash`] impl below, the encoding is explicitly versioned
/// by the tag bytes and independent of `std` hasher internals.
pub fn hash_values(seed: u64, values: &[Value]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    let mut eat = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for value in values {
        match value {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                i.to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Float(f) => {
                eat(2);
                f.to_bits().to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Text(s) => {
                eat(3);
                s.as_bytes().iter().copied().for_each(&mut eat);
            }
            Value::Bool(b) => eat(4 + *b as u8),
            Value::Date(d) => {
                eat(6);
                d.to_le_bytes().into_iter().for_each(&mut eat);
            }
        }
    }
    hash
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and floats that compare equal must hash equally
            // because they share a type rank in the total order.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Date(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Converts a civil date to days since the Unix epoch.
///
/// Algorithm from Howard Hinnant's `chrono`-compatible date algorithms
/// (public domain), valid for the full `i32` year range.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let m = month as i64;
    let d = day as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Converts days since the Unix epoch back to a civil `(year, month, day)`.
pub fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + (m <= 2) as i64) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_cmp_with_null_is_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn total_order_null_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn numeric_family_compares_across_types() {
        assert_eq!(Value::Int(3).cmp(&Value::Float(3.0)), Ordering::Equal);
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.9) < Value::Int(3));
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
    }

    #[test]
    fn equal_numerics_hash_equally() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
    }

    #[test]
    fn text_ordering_is_lexicographic() {
        assert!(Value::text("abc") < Value::text("abd"));
        assert!(Value::text("abc") < Value::text("abcd"));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2011, 12, 31), (1969, 7, 20)] {
            let v = Value::date_from_ymd(y, m, d);
            if let Value::Date(days) = v {
                assert_eq!(civil_from_days(days), (y, m, d));
            } else {
                panic!("not a date");
            }
        }
        assert_eq!(Value::date_from_ymd(1970, 1, 1), Value::Date(0));
    }

    #[test]
    fn date_display_is_iso() {
        assert_eq!(Value::date_from_ymd(2011, 3, 5).to_string(), "2011-03-05");
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Float(1.5).as_float().unwrap(), 1.5);
        assert_eq!(Value::Int(2).as_float().unwrap(), 2.0);
        assert_eq!(Value::text("x").as_text().unwrap(), "x");
        assert!(Value::text("x").as_int().is_err());
        assert!(Value::Int(1).as_text().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::text("hi"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(DataType::Text.to_string(), "TEXT");
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts NaN above all numbers; we only require a total order.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&one), Ordering::Equal);
    }
}

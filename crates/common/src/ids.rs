//! Strongly-typed identifiers.
//!
//! SharedDB turns *queries into data* (Section 3.3 of the paper): the id of an
//! active query travels through the data flow just like any other attribute.
//! Giving ids their own newtypes keeps the code honest about which kind of id
//! is which.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// Identifier of one *active query* (one activation of a prepared
    /// statement with concrete parameters). This is the value stored in the
    /// NF² `query_id` column of the data-query model.
    QueryId,
    u32
);

id_newtype!(
    /// Identifier of a *query type* (prepared statement) registered with the
    /// global plan. Hundreds of concurrent [`QueryId`]s may map to the same
    /// `StatementId`.
    StatementId,
    u32
);

id_newtype!(
    /// Identifier of a base table in the catalog.
    TableId,
    u32
);

id_newtype!(
    /// Index of a column within a schema.
    ColumnId,
    u32
);

id_newtype!(
    /// Identifier of a connected client / session.
    ClientId,
    u64
);

id_newtype!(
    /// Ticket handed to a client when a query is admitted; used to collect the
    /// result set once the batch containing the query has been processed.
    TicketId,
    u64
);

id_newtype!(
    /// Identifier of an operator node in the global query plan.
    OperatorId,
    u32
);

id_newtype!(
    /// Monotonically increasing batch ("heartbeat") sequence number of a
    /// shared operator or of the storage layer.
    BatchId,
    u64
);

id_newtype!(
    /// Logical commit timestamp used by the MVCC storage layer (snapshot
    /// isolation). Timestamp 0 means "visible to everyone" (bulk-loaded data).
    Timestamp,
    u64
);

/// Thread-safe generator for [`QueryId`]s.
///
/// The engine allocates a fresh query id for every admitted query; ids wrap
/// around after `u32::MAX` which is safe because ids only need to be unique
/// among *concurrently active* queries.
#[derive(Debug, Default)]
pub struct QueryIdGenerator {
    next: AtomicU32,
}

impl QueryIdGenerator {
    /// Creates a generator starting at id 1 (0 is reserved as a sentinel).
    pub fn new() -> Self {
        Self {
            next: AtomicU32::new(1),
        }
    }

    /// Allocates the next query id.
    pub fn next_id(&self) -> QueryId {
        let mut id = self.next.fetch_add(1, Ordering::Relaxed);
        if id == 0 {
            // Skip the reserved sentinel on wrap-around.
            id = self.next.fetch_add(1, Ordering::Relaxed);
        }
        QueryId(id)
    }
}

/// Thread-safe generator for [`TicketId`]s.
#[derive(Debug, Default)]
pub struct TicketGenerator {
    next: AtomicU64,
}

impl TicketGenerator {
    /// Creates a generator starting at ticket 1.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocates the next ticket.
    pub fn next_id(&self) -> TicketId {
        TicketId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn newtypes_are_distinct_types_and_roundtrip() {
        let q = QueryId(7);
        assert_eq!(q.raw(), 7);
        assert_eq!(QueryId::from(7u32), q);
        assert_eq!(format!("{q}"), "QueryId(7)");
    }

    #[test]
    fn ordering_follows_inner_value() {
        assert!(QueryId(1) < QueryId(2));
        assert!(Timestamp(10) > Timestamp(9));
    }

    #[test]
    fn query_id_generator_is_unique_and_never_zero() {
        let gen = QueryIdGenerator::new();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let id = gen.next_id();
            assert_ne!(id.raw(), 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn query_id_generator_is_thread_safe() {
        let gen = Arc::new(QueryIdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gen = Arc::clone(&gen);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| gen.next_id().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 8000);
    }

    #[test]
    fn ticket_generator_monotonic() {
        let gen = TicketGenerator::new();
        let a = gen.next_id();
        let b = gen.next_id();
        assert!(b > a);
    }
}

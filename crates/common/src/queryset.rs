//! The NF² set-valued `query_id` attribute (Section 3.1 of the paper).
//!
//! Every intermediate tuple of SharedDB carries the set of queries that are
//! potentially interested in it. The paper evaluates two representations —
//! bitmaps and lists — and chooses **lists** because they were more space- and
//! time-efficient in all their experiments. We implement both:
//!
//! * [`QuerySet`] — the list-based representation used by the engine: a sorted
//!   vector of [`QueryId`]s with small inline capacity semantics (most tuples
//!   are interesting to only a handful of queries).
//! * [`BitmapQuerySet`] — a dense bitmap keyed by an offset; only used by the
//!   `queryset` ablation benchmark to reproduce the paper's design decision.

use crate::ids::QueryId;
use std::fmt;

/// List-based set of query ids, kept sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QuerySet {
    ids: Vec<QueryId>,
}

impl QuerySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        QuerySet { ids: Vec::new() }
    }

    /// Creates a set containing a single query.
    pub fn singleton(id: QueryId) -> Self {
        QuerySet { ids: vec![id] }
    }

    /// Creates a set from an arbitrary iterator of ids (sorted + deduplicated).
    pub fn from_ids<I: IntoIterator<Item = QueryId>>(ids: I) -> Self {
        let mut ids: Vec<QueryId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        QuerySet { ids }
    }

    /// Number of queries in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no query subscribed to the tuple.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when `id` is a member.
    pub fn contains(&self, id: QueryId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts a query id; returns `true` when it was not already present.
    pub fn insert(&mut self, id: QueryId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a query id; returns `true` when it was present.
    pub fn remove(&mut self, id: QueryId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.ids.iter().copied()
    }

    /// The members as a slice (always sorted).
    pub fn as_slice(&self) -> &[QueryId] {
        &self.ids
    }

    /// Set union. Linear merge of the two sorted lists.
    pub fn union(&self, other: &QuerySet) -> QuerySet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        QuerySet { ids: out }
    }

    /// In-place union (used by operators that accumulate subscriptions).
    pub fn union_in_place(&mut self, other: &QuerySet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ids = other.ids.clone();
            return;
        }
        *self = self.union(other);
    }

    /// Set intersection. This is the heart of the *shared join*: amending the
    /// join predicate with `R.query_id = S.query_id` (Section 3.3) is
    /// implemented by intersecting the query sets of the two sides and only
    /// emitting a joined tuple when the intersection is non-empty.
    pub fn intersect(&self, other: &QuerySet) -> QuerySet {
        // Iterate over the smaller side and binary-search the larger one when
        // the sizes are lopsided; otherwise do a linear merge.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if large.len() > 16 * small.len().max(1) {
            let mut out = Vec::with_capacity(small.len());
            for &id in &small.ids {
                if large.contains(id) {
                    out.push(id);
                }
            }
            return QuerySet { ids: out };
        }
        let mut out = Vec::with_capacity(small.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        QuerySet { ids: out }
    }

    /// True when the two sets share at least one query id. Cheaper than
    /// computing the full intersection when only the boolean answer matters.
    pub fn intersects(&self, other: &QuerySet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Returns the members that also appear in `keep`, dropping the rest.
    /// Used when routing a shared result back to the queries of one consumer.
    pub fn retain_in(&mut self, keep: &QuerySet) {
        self.ids.retain(|id| keep.contains(*id));
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<QueryId>()
    }
}

impl FromIterator<QueryId> for QuerySet {
    fn from_iter<T: IntoIterator<Item = QueryId>>(iter: T) -> Self {
        QuerySet::from_ids(iter)
    }
}

impl FromIterator<u32> for QuerySet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        QuerySet::from_ids(iter.into_iter().map(QueryId))
    }
}

impl fmt::Display for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", id.raw())?;
        }
        write!(f, "}}")
    }
}

/// Dense bitmap representation of a query set.
///
/// The bitmap covers ids in `[base, base + capacity)`. This mirrors the
/// alternative the paper rejected; it is kept only for the ablation benchmark
/// (`crates/bench/benches/queryset.rs`) that reproduces the "lists beat
/// bitmaps" design decision.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitmapQuerySet {
    base: u32,
    words: Vec<u64>,
}

impl BitmapQuerySet {
    /// Creates an empty bitmap covering ids `[base, base + capacity)`.
    pub fn with_capacity(base: u32, capacity: u32) -> Self {
        BitmapQuerySet {
            base,
            words: vec![0; capacity.div_ceil(64) as usize],
        }
    }

    /// Inserts an id; ids outside the covered range grow the bitmap.
    pub fn insert(&mut self, id: QueryId) {
        let raw = id.raw();
        if raw < self.base {
            // Rebase: shift existing bits up. Rare; simple implementation.
            let shift = (self.base - raw) as usize;
            let mut fresh =
                BitmapQuerySet::with_capacity(raw, (self.words.len() * 64 + shift) as u32);
            for existing in self.iter() {
                fresh.insert(existing);
            }
            *self = fresh;
        }
        let offset = (id.raw() - self.base) as usize;
        let word = offset / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (offset % 64);
    }

    /// True when `id` is a member.
    pub fn contains(&self, id: QueryId) -> bool {
        if id.raw() < self.base {
            return false;
        }
        let offset = (id.raw() - self.base) as usize;
        let word = offset / 64;
        word < self.words.len() && (self.words[word] >> (offset % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            (0..64u32).filter_map(move |bit| {
                if (w >> bit) & 1 == 1 {
                    Some(QueryId(self.base + wi as u32 * 64 + bit))
                } else {
                    None
                }
            })
        })
    }

    /// Bitmap intersection (both bitmaps must share the same base to use the
    /// fast path; otherwise falls back to iteration).
    pub fn intersect(&self, other: &BitmapQuerySet) -> BitmapQuerySet {
        if self.base == other.base {
            let n = self.words.len().min(other.words.len());
            let mut words = Vec::with_capacity(n);
            for i in 0..n {
                words.push(self.words[i] & other.words[i]);
            }
            return BitmapQuerySet {
                base: self.base,
                words,
            };
        }
        let mut out = BitmapQuerySet::with_capacity(self.base.min(other.base), 64);
        for id in self.iter() {
            if other.contains(id) {
                out.insert(id);
            }
        }
        out
    }

    /// Converts to the list representation.
    pub fn to_query_set(&self) -> QuerySet {
        QuerySet::from_ids(self.iter())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(ids: &[u32]) -> QuerySet {
        ids.iter().copied().collect()
    }

    #[test]
    fn insert_keeps_sorted_and_deduplicated() {
        let mut s = QuerySet::new();
        assert!(s.insert(QueryId(5)));
        assert!(s.insert(QueryId(1)));
        assert!(s.insert(QueryId(3)));
        assert!(!s.insert(QueryId(3)));
        assert_eq!(s.as_slice(), &[QueryId(1), QueryId(3), QueryId(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = qs(&[1, 2, 3]);
        assert!(s.contains(QueryId(2)));
        assert!(s.remove(QueryId(2)));
        assert!(!s.remove(QueryId(2)));
        assert!(!s.contains(QueryId(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_merges() {
        let a = qs(&[1, 3, 5]);
        let b = qs(&[2, 3, 6]);
        assert_eq!(a.union(&b), qs(&[1, 2, 3, 5, 6]));
        let mut c = a.clone();
        c.union_in_place(&b);
        assert_eq!(c, qs(&[1, 2, 3, 5, 6]));
    }

    #[test]
    fn union_with_empty() {
        let a = qs(&[1, 2]);
        assert_eq!(a.union(&QuerySet::new()), a);
        assert_eq!(QuerySet::new().union(&a), a);
    }

    #[test]
    fn intersect_shared_join_semantics() {
        // An R tuple relevant only for Q1 must not match an S tuple relevant
        // only for Q2 (Figure 3 of the paper).
        let r = qs(&[1]);
        let s = qs(&[2]);
        assert!(r.intersect(&s).is_empty());
        assert!(!r.intersects(&s));

        let r = qs(&[1, 2, 3]);
        let s = qs(&[2, 3, 4]);
        assert_eq!(r.intersect(&s), qs(&[2, 3]));
        assert!(r.intersects(&s));
    }

    #[test]
    fn intersect_lopsided_uses_binary_search_path() {
        let small = qs(&[100, 5000]);
        let large: QuerySet = (0u32..4096).collect();
        assert_eq!(small.intersect(&large), qs(&[100]));
        assert_eq!(large.intersect(&small), qs(&[100]));
    }

    #[test]
    fn retain_in_filters() {
        let mut s = qs(&[1, 2, 3, 4]);
        s.retain_in(&qs(&[2, 4, 9]));
        assert_eq!(s, qs(&[2, 4]));
    }

    #[test]
    fn from_ids_deduplicates_unsorted_input() {
        let s = QuerySet::from_ids([QueryId(9), QueryId(1), QueryId(9), QueryId(4)]);
        assert_eq!(s.as_slice(), &[QueryId(1), QueryId(4), QueryId(9)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(qs(&[1, 2]).to_string(), "{1, 2}");
        assert_eq!(QuerySet::new().to_string(), "{}");
    }

    #[test]
    fn bitmap_basic_ops() {
        let mut b = BitmapQuerySet::with_capacity(0, 128);
        assert!(b.is_empty());
        b.insert(QueryId(3));
        b.insert(QueryId(64));
        b.insert(QueryId(200)); // forces growth
        assert!(b.contains(QueryId(3)));
        assert!(b.contains(QueryId(200)));
        assert!(!b.contains(QueryId(4)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_query_set(), qs(&[3, 64, 200]));
    }

    #[test]
    fn bitmap_rebase_below_base() {
        let mut b = BitmapQuerySet::with_capacity(100, 64);
        b.insert(QueryId(150));
        b.insert(QueryId(10));
        assert!(b.contains(QueryId(150)));
        assert!(b.contains(QueryId(10)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn bitmap_intersect_matches_list_semantics() {
        let mut a = BitmapQuerySet::with_capacity(0, 256);
        let mut b = BitmapQuerySet::with_capacity(0, 256);
        for id in [1u32, 5, 9, 200] {
            a.insert(QueryId(id));
        }
        for id in [5u32, 200, 201] {
            b.insert(QueryId(id));
        }
        assert_eq!(a.intersect(&b).to_query_set(), qs(&[5, 200]));
    }

    #[test]
    fn list_and_bitmap_agree_randomised() {
        // Deterministic pseudo-random check without external crates.
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 512) as u32
        };
        for _ in 0..50 {
            let xs: Vec<u32> = (0..40).map(|_| next()).collect();
            let ys: Vec<u32> = (0..40).map(|_| next()).collect();
            let la: QuerySet = xs.iter().copied().collect();
            let lb: QuerySet = ys.iter().copied().collect();
            let mut ba = BitmapQuerySet::with_capacity(0, 512);
            let mut bb = BitmapQuerySet::with_capacity(0, 512);
            for &x in &xs {
                ba.insert(QueryId(x));
            }
            for &y in &ys {
                bb.insert(QueryId(y));
            }
            assert_eq!(la.intersect(&lb), ba.intersect(&bb).to_query_set());
            assert_eq!(la.union(&lb), {
                let mut u = ba.clone();
                for id in bb.iter() {
                    u.insert(id);
                }
                u.to_query_set()
            });
        }
    }
}

//! # shareddb-common
//!
//! Foundational types shared by every SharedDB crate:
//!
//! * [`value`] — typed SQL values and data types.
//! * [`schema`] — columns, schemas and name resolution.
//! * [`tuple`] — row representation.
//! * [`queryset`] — the NF² set-valued `query_id` attribute of the paper's
//!   *data-query model* (Section 3.1), implemented as a sorted list plus a
//!   bitmap variant used for ablation benchmarks.
//! * [`qtuple`] — a tuple annotated with the set of interested queries.
//! * [`expr`] — scalar expressions and predicates, with parameter binding.
//! * [`agg`] — aggregate functions and accumulators.
//! * [`sort`] — sort specifications and comparators.
//! * [`ids`] — strongly-typed identifiers (queries, tables, clients, ...).
//! * [`metrics`] — lock-free histograms, counters, gauges and registries.
//! * [`crc32`] — hand-rolled CRC-32 for the WAL / checkpoint on-disk framing.
//! * [`error`] — the common error type.

pub mod agg;
pub mod crc32;
pub mod error;
pub mod expr;
pub mod ids;
pub mod metrics;
pub mod partition;
pub mod qtuple;
pub mod queryset;
pub mod schema;
pub mod sort;
pub mod tuple;
pub mod value;

pub use crc32::{crc32, Crc32};
pub use error::{Error, Result};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use ids::{ClientId, ColumnId, QueryId, StatementId, TableId, TicketId};
pub use partition::tuple_partition;
pub use qtuple::QTuple;
pub use queryset::QuerySet;
pub use schema::{Column, Schema};
pub use sort::{SortKey, SortOrder};
pub use tuple::Tuple;
pub use value::{hash_values, DataType, Value};

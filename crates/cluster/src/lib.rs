//! # shareddb-cluster
//!
//! Replicated SharedDB engines behind one endpoint (paper §4.5: "hot
//! operators that saturate a core are replicated or partitioned").
//!
//! A [`ClusterEngine`] owns N [`shareddb_core::Engine`] replicas over **one
//! shared [`shareddb_storage::Catalog`]** — every replica runs the same
//! always-on global plan, so any replica can answer any statement. A
//! [`router::Route`] per statement type decides where executions go:
//!
//! * **cold types stay pinned** to one home replica, so all executions of a
//!   type keep batching through the same shared scans (the whole point of
//!   SharedDB);
//! * **hot types are replicated**: the router watches per-type submission
//!   throughput and per-replica admission-queue depth (the engines'
//!   [`shareddb_core::stats::EngineStats`]) and promotes a type once it
//!   saturates its home engine. Fanout-eligible statements — single-scan
//!   shapes *and* equi-joins keyed on a partitioning key, see
//!   [`engine::ClusterEngine`] — then **scatter** over all replicas with
//!   disjoint scan partitions
//!   ([`shareddb_core::SubmitOptions::scan_partition`]) and their partial
//!   results recombine in a [`merge::MergeSpec`] merge step (ordered merge,
//!   partial-aggregate recombination incl. exact AVG from sum/count
//!   partials, re-deduplication). Other parameterised executions route by a
//!   hash of the parameter vector (hash-partitioned input routing);
//! * **fanned-out executions are snapshot-pinned**: the cluster captures one
//!   [`shareddb_storage::Catalog::snapshot`] per execution and every
//!   partition reads exactly that version set
//!   ([`shareddb_core::SubmitOptions::pinned_snapshot`]), so a scattered
//!   query is transactionally indistinguishable from a single-engine
//!   execution even under concurrent writes;
//! * **merges run off the caller's thread**: the last-completing partition
//!   dispatches the recombination to a small merge worker pool
//!   ([`ClusterConfig::merge_threads`]), and the submitter's completion
//!   waker fires once with the finished result — the network reactor never
//!   merges on its event loop;
//! * **updates always pin to replica 0**, keeping the shared catalog's group
//!   commit single-writer; MVCC snapshots make the writes visible to every
//!   replica's next batch.
//!
//! With `replicas == 1` the cluster degenerates to exactly the single-engine
//! behaviour, which is how the network server embeds it by default.

pub mod engine;
pub mod fanout;
pub mod merge;
pub mod router;

pub use engine::{ClusterEngine, ClusterHandle};
pub use merge::MergeSpec;
pub use router::Route;

use std::time::Duration;

/// Configuration of a [`ClusterEngine`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of engine replicas (1 = single-engine behaviour).
    pub replicas: usize,
    /// Submission rate (statements/s of one type) above which the type is
    /// promoted to replicated routing at the next refresh.
    pub hot_rate_per_s: f64,
    /// Admission-queue depth at which a home replica counts as saturated;
    /// its dominant statement type is then promoted even below the rate
    /// threshold.
    pub hot_queue_depth: usize,
    /// How often the router re-evaluates routes from the engine statistics.
    pub refresh_interval: Duration,
    /// Statement types that are replicated from the start (no detection
    /// delay); used by benchmarks and tests.
    pub replicate_statements: Vec<String>,
    /// Size of the worker pool that recombines fanned-out partial results
    /// (at least 1). Merges run here instead of on the polling caller (the
    /// network reactor), so huge merged results cannot stall the event loop.
    pub merge_threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 1,
            hot_rate_per_s: 2_000.0,
            hot_queue_depth: 128,
            refresh_interval: Duration::from_millis(200),
            replicate_statements: Vec::new(),
            merge_threads: 2,
        }
    }
}

impl ClusterConfig {
    /// Configuration with `replicas` engines and default thresholds.
    pub fn with_replicas(replicas: usize) -> Self {
        ClusterConfig {
            replicas: replicas.max(1),
            ..ClusterConfig::default()
        }
    }
}

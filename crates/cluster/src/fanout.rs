//! Off-thread recombination of fanned-out executions.
//!
//! PR 3 ran the scatter/merge step of a fanned-out statement inside whoever
//! polled the handle — for the network server that was the reactor thread,
//! so a huge merged result could stall accepts and reads. The merge now runs
//! on a small worker pool owned by the [`crate::ClusterEngine`]:
//!
//! * every partition of a fanned-out execution gets a cluster-internal
//!   completion waker; the waker that observes the **last** partition
//!   completing dispatches the execution to the pool;
//! * a pool worker collects the partial results, runs the
//!   [`crate::merge::MergeSpec`] merge, stores the merged outcome in the
//!   shared [`FanoutState`], and only then fires the caller's own completion
//!   waker — so an event-driven caller (the reactor) is woken exactly once,
//!   with the finished result already posted to its reply queue;
//! * if the pool is already shut down the dispatching waker runs the merge
//!   inline (the engines are joined before the pool, so this fallback only
//!   covers stragglers during teardown — nothing can deadlock on a
//!   never-merged handle).

use crate::merge::{merge_results, MergeSpec};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use shareddb_common::{Error, Result};
use shareddb_core::engine::{QueryHandle, QueryOutcome, ResultSet};
use shareddb_core::stats::{Phase, PhaseTable};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Shared state of one fanned-out execution: the per-partition handles, the
/// completion countdown, and the merged outcome once a pool worker produced
/// it.
pub struct FanoutState {
    /// Per-partition handles, consumed by the merging worker.
    parts: Mutex<Vec<QueryHandle>>,
    /// Completion countdown. Starts at the fanout width **plus one guard
    /// token held by the submitter**: each partition waker decrements once,
    /// and the submitter releases the guard only after every handle is
    /// registered (or compensates for never-submitted partitions on
    /// failure) — so the merge cannot dispatch while handles are still being
    /// pushed, even if a partition completes before its `submit` call
    /// returns. Exactly one decrement observes zero and dispatches.
    remaining: AtomicUsize,
    /// Set when the submission failed partway: the merge job only drains the
    /// already-submitted partitions (discarded work) and produces no result.
    abandoned: AtomicBool,
    /// How the partial results recombine.
    merge: MergeSpec,
    /// Statement-level LIMIT re-applied after the merge.
    limit: Option<usize>,
    /// The merged outcome; `Some` exactly once, taken by the handle.
    result: Mutex<Option<Result<QueryOutcome>>>,
    /// Signalled when `result` is posted (for blocking waiters).
    done: Condvar,
    /// The submitting caller's own completion waker, fired once after the
    /// merge.
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Cluster phase table + statement index for the Merge histogram; set
    /// once by the submitter before `arm` releases the guard token.
    phases: Mutex<Option<(Arc<PhaseTable>, usize)>>,
}

impl FanoutState {
    /// Creates the state for a fanout of `width` partitions.
    pub(crate) fn new(
        width: usize,
        merge: MergeSpec,
        limit: Option<usize>,
        waker: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> Arc<FanoutState> {
        Arc::new(FanoutState {
            parts: Mutex::new(Vec::with_capacity(width)),
            remaining: AtomicUsize::new(width + 1),
            abandoned: AtomicBool::new(false),
            merge,
            limit,
            result: Mutex::new(None),
            done: Condvar::new(),
            waker,
            phases: Mutex::new(None),
        })
    }

    /// Points the merge at the cluster's phase histograms: `run_merge` will
    /// record its duration under `Phase::Merge` for statement `index`.
    pub(crate) fn tag_phases(&self, table: Arc<PhaseTable>, index: usize) {
        *self.phases.lock() = Some((table, index));
    }

    /// Registers one successfully submitted partition handle.
    pub(crate) fn push_part(&self, handle: QueryHandle) {
        self.parts.lock().push(handle);
    }

    /// The per-partition completion waker: counts the partition down and
    /// dispatches the merge when it was the last one.
    pub(crate) fn partition_waker(
        self: &Arc<FanoutState>,
        pool: &MergePool,
    ) -> Arc<dyn Fn() + Send + Sync> {
        let state = Arc::clone(self);
        let pool = pool.clone();
        Arc::new(move || {
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                pool.dispatch(Arc::clone(&state));
            }
        })
    }

    /// Releases the submitter's guard token once every partition handle is
    /// registered; from here on the last-completing partition dispatches the
    /// merge (or it dispatches right here if all partitions already
    /// completed).
    pub(crate) fn arm(self: &Arc<FanoutState>, pool: &MergePool) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            pool.dispatch(Arc::clone(self));
        }
    }

    /// Balances the countdown after a partial-admission failure: `unsubmitted`
    /// partitions will never fire a waker, and the guard token is released
    /// too. If everything already-submitted has completed, the (abandoned)
    /// merge job is dispatched here.
    pub(crate) fn abandon(self: &Arc<FanoutState>, unsubmitted: usize, pool: &MergePool) {
        self.abandoned.store(true, Ordering::Release);
        if self.remaining.fetch_sub(unsubmitted + 1, Ordering::AcqRel) == unsubmitted + 1 {
            pool.dispatch(Arc::clone(self));
        }
    }

    /// Non-blocking poll: `Some(outcome)` exactly once after the merge ran.
    pub(crate) fn try_take(&self) -> Option<Result<QueryOutcome>> {
        self.result.lock().take()
    }

    /// Blocks until the merged outcome is available.
    pub(crate) fn wait(&self) -> Result<QueryOutcome> {
        let mut result = self.result.lock();
        loop {
            if let Some(outcome) = result.take() {
                return outcome;
            }
            self.done.wait(&mut result);
        }
    }

    /// Runs the merge: collects every partition's outcome, recombines, posts
    /// the result and fires the caller waker. Runs on a pool worker (or
    /// inline in the last partition waker during teardown).
    fn run_merge(&self) {
        let parts: Vec<QueryHandle> = std::mem::take(&mut *self.parts.lock());
        if self.abandoned.load(Ordering::Acquire) {
            // Discarded work of a failed submission: drain and drop.
            for part in parts {
                let _ = part.wait();
            }
            return;
        }
        let merge_started = Instant::now();
        let outcome = merge_parts(&self.merge, self.limit, parts);
        if let Some((table, index)) = self.phases.lock().as_ref() {
            table.record(*index, Phase::Merge, merge_started.elapsed());
        }
        *self.result.lock() = Some(outcome);
        self.done.notify_all();
        if let Some(waker) = &self.waker {
            waker();
        }
    }
}

fn merge_parts(
    merge: &MergeSpec,
    limit: Option<usize>,
    parts: Vec<QueryHandle>,
) -> Result<QueryOutcome> {
    let mut partials = Vec::with_capacity(parts.len());
    for part in parts {
        // Every partition has completed (the countdown reached zero), so
        // these waits return immediately.
        partials.push(expect_rows(part.wait()?)?);
    }
    let mut merged = merge_results(merge, partials)?;
    if let Some(limit) = limit {
        merged.rows.truncate(limit);
    }
    Ok(QueryOutcome::Rows(merged))
}

pub(crate) fn expect_rows(outcome: QueryOutcome) -> Result<ResultSet> {
    match outcome {
        QueryOutcome::Rows(rows) => Ok(rows),
        QueryOutcome::Updated { .. } => Err(Error::Internal(
            "fanned-out statement produced an update outcome".into(),
        )),
    }
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

/// Cloneable dispatch half of the merge pool.
pub(crate) struct MergePool {
    tx: Arc<Mutex<Option<Sender<Arc<FanoutState>>>>>,
}

impl Clone for MergePool {
    fn clone(&self) -> Self {
        MergePool {
            tx: Arc::clone(&self.tx),
        }
    }
}

impl MergePool {
    /// Spawns `threads` merge workers (at least one).
    pub(crate) fn start(threads: usize) -> (MergePool, Vec<JoinHandle<()>>) {
        let (tx, rx) = unbounded::<Arc<FanoutState>>();
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx: Receiver<Arc<FanoutState>> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("shareddb-merge-{i}"))
                    .spawn(move || {
                        while let Ok(state) = rx.recv() {
                            state.run_merge();
                        }
                    })
                    .expect("failed to spawn merge worker")
            })
            .collect();
        (
            MergePool {
                tx: Arc::new(Mutex::new(Some(tx))),
            },
            workers,
        )
    }

    /// Hands a completed fanout to a worker; merges inline when the pool is
    /// already torn down.
    pub(crate) fn dispatch(&self, state: Arc<FanoutState>) {
        let sent = match &*self.tx.lock() {
            Some(tx) => tx.send(Arc::clone(&state)).is_ok(),
            None => false,
        };
        if !sent {
            state.run_merge();
        }
    }

    /// Closes the job channel; queued merges still drain before the workers
    /// exit (join the returned handles after calling this).
    pub(crate) fn shutdown(&self) {
        self.tx.lock().take();
    }
}

//! The clustered engine: N replicas of the shared-operator runtime behind one
//! submit interface.

use crate::fanout::{FanoutState, MergePool};
use crate::router::{Route, Router};
use crate::ClusterConfig;
use shareddb_common::{Result, Value};
use shareddb_core::engine::{QueryHandle, QueryOutcome};
use shareddb_core::scatter::{scatter_spec, ScatterSpec};
use shareddb_core::stats::{
    merge_attribution, AttributionEntry, EngineStatsSnapshot, OperatorStatsSnapshot, Phase,
    PhaseTable, SegmentStatsSnapshot, SlowQueryRecord, StatementPhaseSnapshot,
};
use shareddb_core::trace::TraceRecord;
use shareddb_core::{Engine, EngineConfig, GlobalPlan, StatementRegistry, SubmitOptions};
use shareddb_storage::Catalog;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a fanned-out read waits for its session's write fence to
/// resolve before pinning the fanout snapshot anyway (mirrors the engine
/// coordinator's cap — a wedged writer must not hang readers).
const FENCE_WAIT_CAP: Duration = Duration::from_secs(1);

/// N engine replicas over one shared [`Catalog`], fronted by a [`Router`]
/// that dispatches each admitted statement by type (see the crate docs).
pub struct ClusterEngine {
    engines: Vec<Engine>,
    router: Router,
    registry: StatementRegistry,
    plan: GlobalPlan,
    fanout: Vec<Option<ScatterSpec>>,
    catalog: Arc<Catalog>,
    merge_pool: MergePool,
    merge_workers: Vec<JoinHandle<()>>,
    /// Cluster-level phase histograms (scatter + merge of fanned-out
    /// statements), keyed by statement index like the per-engine tables.
    phases: Arc<PhaseTable>,
}

impl ClusterEngine {
    /// Starts `config.replicas` engines over one shared catalog and global
    /// plan. With `replicas == 1` the cluster behaves exactly like a single
    /// [`Engine`] (everything pinned to replica 0, no fanout).
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        config: ClusterConfig,
    ) -> Result<ClusterEngine> {
        let replicas = config.replicas.max(1);
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            engines.push(Engine::start(
                Arc::clone(&catalog),
                plan.clone(),
                registry.clone(),
                engine_config.clone(),
            )?);
        }
        let router = Router::new(&registry, &config);
        let fanout = registry
            .iter()
            .map(|spec| scatter_spec(&catalog, &plan, spec))
            .collect();
        let (merge_pool, merge_workers) = MergePool::start(config.merge_threads);
        let phases = Arc::new(PhaseTable::new(
            registry.iter().map(|s| s.name.clone()).collect(),
        ));
        Ok(ClusterEngine {
            engines,
            router,
            registry,
            plan,
            fanout,
            catalog,
            merge_pool,
            merge_workers,
            phases,
        })
    }

    /// The shared catalog.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// The global plan every replica deploys (replicas share one shape).
    pub fn plan(&self) -> &GlobalPlan {
        &self.plan
    }

    /// The statement registry the cluster routes by.
    pub fn registry(&self) -> &StatementRegistry {
        &self.registry
    }

    /// Number of engine replicas.
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Submits a statement; the router picks the replica (or fans the query
    /// out over all replicas with partitioned scans).
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<ClusterHandle> {
        let (index, spec) = self.registry.get(statement)?;
        self.router.note_submit(index);
        self.router
            .maybe_refresh(|| self.engines.iter().map(|e| e.queued()).collect());
        if !spec.is_update()
            && self.engines.len() > 1
            && matches!(self.router.route(index), Route::Replicated)
        {
            if let Some(fanout) = &self.fanout[index] {
                if params.is_empty() || fanout.scatter_with_params {
                    return self.submit_fanout(statement, index, params, opts, fanout);
                }
            }
        }
        let replica = self.router.pick_replica(index, params);
        let handle = self.engines[replica].submit(statement, params, opts)?;
        Ok(ClusterHandle::Single { replica, handle })
    }

    fn submit_fanout(
        &self,
        statement: &str,
        index: usize,
        params: &[Value],
        opts: SubmitOptions,
        fanout: &ScatterSpec,
    ) -> Result<ClusterHandle> {
        let of = self.engines.len() as u32;
        let scatter_started = Instant::now();
        // Read-your-writes: a fanned-out execution pins one snapshot for
        // every partition, so that snapshot itself must already cover the
        // session's last write — the per-engine fence deferral cannot help a
        // query that brings its own (older) snapshot. Bounded wait, matching
        // the engine coordinator's fence cap: a wedged writer must not hang
        // the submitting session forever.
        if let Some(fence) = &opts.read_after {
            let waited = Instant::now();
            while fence.committed_ts().is_none() && waited.elapsed() < FENCE_WAIT_CAP {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        // One MVCC snapshot per fanned-out execution: every partition reads
        // the same version set, so the merged result is indistinguishable
        // from a single-engine execution at that snapshot even under
        // concurrent writes (and co-partitioning by non-key join columns
        // stays exactly-once: a row version cannot move between partitions
        // within one pinned snapshot).
        let snapshot = self.catalog.snapshot();
        // Bind statement parameters into the merge spec: the deferred HAVING
        // of a grouped merge may carry `?` placeholders.
        let state = FanoutState::new(
            self.engines.len(),
            fanout.merge.bind(params)?,
            fanout.limit,
            opts.completion_waker.clone(),
        );
        state.tag_phases(Arc::clone(&self.phases), index);
        for (part_index, engine) in self.engines.iter().enumerate() {
            let mut part_opts = opts.clone();
            part_opts.scan_partition = Some((part_index as u32, of));
            part_opts.partition_columns = fanout.partition_columns.clone();
            part_opts.pinned_snapshot = Some(snapshot);
            part_opts.partial_aggregation = fanout.partial_aggregation;
            // Partitions wake the cluster, not the caller: the last one
            // dispatches the merge to the worker pool, and the caller's own
            // waker fires once the merged result is posted.
            part_opts.completion_waker = Some(state.partition_waker(&self.merge_pool));
            match engine.submit(statement, params, part_opts) {
                Ok(handle) => state.push_part(handle),
                Err(e) => {
                    // Partial-admission failure: the already-submitted
                    // partitions complete into an abandoned merge job
                    // (harmless discarded work) and the caller sees the
                    // rejection.
                    state.abandon(self.engines.len() - part_index, &self.merge_pool);
                    return Err(e);
                }
            }
        }
        state.arm(&self.merge_pool);
        // Scatter phase: snapshot capture, merge binding and the submission
        // of every partition to its replica.
        self.phases
            .record(index, Phase::Scatter, scatter_started.elapsed());
        Ok(ClusterHandle::Fanout { state })
    }

    /// Submits and returns the handle (default options).
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<ClusterHandle> {
        self.submit(statement, params, SubmitOptions::default())
    }

    /// Submits and blocks until the (merged) result is available.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<QueryOutcome> {
        self.execute(statement, params)?.wait()
    }

    /// Aggregated statistics over all replicas. Latency percentiles are
    /// computed from the **merged** per-replica histograms, so they are the
    /// same numbers a single engine seeing all the traffic would report —
    /// not a max-of-p99s approximation.
    pub fn stats(&self) -> EngineStatsSnapshot {
        let mut total = EngineStatsSnapshot::default();
        let mut weighted_latency_nanos: u128 = 0;
        for stats in self.engines.iter().map(|e| e.stats()) {
            let completed = stats.queries + stats.updates;
            weighted_latency_nanos += stats.mean_latency.as_nanos() * completed as u128;
            total.batches += stats.batches;
            total.queries += stats.queries;
            total.updates += stats.updates;
            total.failed += stats.failed;
            total.result_rows += stats.result_rows;
            total.max_latency = total.max_latency.max(stats.max_latency);
            total.histogram.merge_from(&stats.histogram);
            total.occupancy.merge_from(&stats.occupancy);
        }
        let completed = (total.queries + total.updates) as u128;
        if let Some(mean) = weighted_latency_nanos.checked_div(completed) {
            total.mean_latency = std::time::Duration::from_nanos(mean as u64);
        }
        total.p50_latency = Duration::from_micros(total.histogram.percentile_us(0.50));
        total.p95_latency = Duration::from_micros(total.histogram.percentile_us(0.95));
        total.p99_latency = Duration::from_micros(total.histogram.percentile_us(0.99));
        total
    }

    /// Per-replica statistics snapshots, in replica order.
    pub fn replica_stats(&self) -> Vec<EngineStatsSnapshot> {
        self.engines.iter().map(|e| e.stats()).collect()
    }

    /// Per-replica, per-statement, per-phase latency histograms (admission /
    /// batch-wait / execute / total recorded by each engine).
    pub fn replica_phase_stats(&self) -> Vec<Vec<StatementPhaseSnapshot>> {
        self.engines.iter().map(|e| e.phase_snapshot()).collect()
    }

    /// Cluster-level phase histograms (scatter + merge of fanned-out
    /// statements).
    pub fn cluster_phase_stats(&self) -> Vec<StatementPhaseSnapshot> {
        self.phases.snapshot()
    }

    /// Per-replica operator statistics with the wall-clock length of each
    /// replica's statistics window (the busy-fraction denominator).
    pub fn replica_operator_stats(&self) -> Vec<(Duration, Vec<OperatorStatsSnapshot>)> {
        self.engines
            .iter()
            .map(|e| (e.stats_wall(), e.operator_stats()))
            .collect()
    }

    /// Per-replica segment-lane statistics (`EngineConfig::scan_segments`):
    /// empty inner vectors when segment parallelism is off. Cluster fanout
    /// and segment parallelism compose — a fanned-out partition may itself
    /// run segmented — so segment skew is reported per replica.
    pub fn replica_segment_stats(&self) -> Vec<(Duration, Vec<SegmentStatsSnapshot>)> {
        self.engines
            .iter()
            .map(|e| (e.stats_wall(), e.segment_stats()))
            .collect()
    }

    /// Slow-query offenders summed over replicas: total count plus the
    /// retained records, each stamped with the replica that executed it
    /// (replica order preserved within the concatenation).
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        let mut total = 0;
        let mut records = Vec::new();
        for (replica, engine) in self.engines.iter().enumerate() {
            let (count, tail) = engine.slow_queries();
            total += count;
            records.extend(tail.into_iter().map(|mut record| {
                record.replica = replica;
                record
            }));
        }
        (total, records)
    }

    /// Per-replica per-operator × per-statement-type cost attribution
    /// snapshots, in replica order.
    pub fn replica_attribution_stats(&self) -> Vec<Vec<AttributionEntry>> {
        self.engines.iter().map(|e| e.attribution_stats()).collect()
    }

    /// Cluster-wide cost attribution: per-replica tables summed by
    /// `(operator, statement)` key. Because every replica deploys the same
    /// plan, the merged table reads exactly like a single engine that saw
    /// all the traffic.
    pub fn attribution_stats(&self) -> Vec<AttributionEntry> {
        merge_attribution(&self.replica_attribution_stats())
    }

    /// The batch-lifecycle trace journal of one replica, oldest first.
    pub fn replica_trace(&self, replica: usize) -> Vec<TraceRecord> {
        self.engines
            .get(replica)
            .map(|e| e.trace())
            .unwrap_or_default()
    }

    /// Zeroes every replica's statistics (counters, histograms, slow-query
    /// logs, operator counters) and the cluster-level scatter/merge
    /// histograms. Bench harnesses call this after warm-up.
    pub fn reset_stats(&self) {
        for engine in &self.engines {
            engine.reset_stats();
        }
        self.phases.reset();
    }

    /// Statements queued but not yet batched, summed over replicas.
    pub fn queued(&self) -> usize {
        self.engines.iter().map(|e| e.queued()).sum()
    }

    /// Per-replica admission-queue depths.
    pub fn queued_per_replica(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.queued()).collect()
    }

    /// Per-replica admission-lane depths, `(light, heavy)` per replica.
    pub fn lane_depths_per_replica(&self) -> Vec<(usize, usize)> {
        self.engines.iter().map(|e| e.lane_depths()).collect()
    }

    /// Per-replica heartbeat interval currently in effect (equals the
    /// configured interval under a fixed policy; moves within `[min, max]`
    /// under an adaptive one).
    pub fn replica_heartbeats(&self) -> Vec<Duration> {
        self.engines
            .iter()
            .map(|e| e.heartbeat_interval())
            .collect()
    }

    /// Per-replica count of adaptive heartbeat adjustments (0 under a fixed
    /// policy).
    pub fn replica_heartbeat_adjustments(&self) -> Vec<u64> {
        self.engines
            .iter()
            .map(|e| e.heartbeat_adjustments())
            .collect()
    }

    /// Current route per statement type (name, route).
    pub fn routes(&self) -> Vec<(String, Route)> {
        self.registry
            .iter()
            .map(|s| s.name.clone())
            .zip(self.router.routes())
            .collect()
    }

    /// Stops every replica, then drains and joins the merge workers.
    pub fn shutdown(&mut self) {
        // Engines first: their shutdown fails in-flight work and fires the
        // partition wakers, so every outstanding fanout dispatches its merge
        // job before the pool closes.
        for engine in &mut self.engines {
            engine.shutdown();
        }
        self.merge_pool.shutdown();
        for worker in self.merge_workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ClusterEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Handle to a statement submitted to the cluster. Like
/// [`shareddb_core::engine::QueryHandle`] it supports blocking
/// ([`ClusterHandle::wait`]) and event-driven polling
/// ([`ClusterHandle::try_wait`], paired with
/// [`SubmitOptions::completion_waker`]). For fanned-out executions the
/// caller's waker fires exactly **once**, after the merge worker posted the
/// recombined result — polling never runs the merge on the caller's thread.
pub enum ClusterHandle {
    /// The statement runs wholly on one replica.
    Single {
        /// Executing replica.
        replica: usize,
        /// The replica's handle.
        handle: QueryHandle,
    },
    /// The statement was scattered over all replicas with partitioned scans;
    /// the shared state tracks the partitions and receives the merged
    /// outcome from the merge pool.
    Fanout {
        /// Shared state of the fanned-out execution.
        state: Arc<FanoutState>,
    },
}

impl ClusterHandle {
    /// The executing replica for single-replica submissions (fanned-out
    /// executions run everywhere).
    pub fn replica(&self) -> Option<usize> {
        match self {
            ClusterHandle::Single { replica, .. } => Some(*replica),
            ClusterHandle::Fanout { .. } => None,
        }
    }

    /// Blocks until the (merged) outcome is available.
    pub fn wait(self) -> Result<QueryOutcome> {
        match self {
            ClusterHandle::Single { handle, .. } => handle.wait(),
            ClusterHandle::Fanout { state } => state.wait(),
        }
    }

    /// Non-blocking poll: `None` while any partition is in flight or the
    /// merge has not been posted yet, `Some(outcome)` exactly once when the
    /// merged result is ready.
    pub fn try_wait(&mut self) -> Option<Result<QueryOutcome>> {
        match self {
            ClusterHandle::Single { handle, .. } => handle.try_wait(),
            ClusterHandle::Fanout { state } => state.try_take(),
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::agg::AggregateFunction;
    use shareddb_common::tuple;
    use shareddb_common::DataType;
    use shareddb_common::Error;
    use shareddb_core::plan::ActivationTemplate;
    use shareddb_sql::compile_workload;
    use shareddb_storage::TableDef;
    use std::time::Duration;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..200i64)
                    .map(|i| {
                        tuple![
                            i,
                            if i % 4 == 0 { "HISTORY" } else { "FICTION" },
                            (i % 50) as f64
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    const WORKLOAD: &[(&str, &str)] = &[
        ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
        ("allItems", "SELECT * FROM ITEM ORDER BY I_ID"),
        (
            "costBySubject",
            "SELECT I_SUBJECT, SUM(I_COST), COUNT(*), MIN(I_COST), MAX(I_COST) \
             FROM ITEM GROUP BY I_SUBJECT",
        ),
        ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
    ];

    fn start(replicas: usize, config: ClusterConfig) -> ClusterEngine {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ClusterConfig { replicas, ..config },
        )
        .unwrap()
    }

    #[test]
    fn single_replica_behaves_like_one_engine() {
        let cluster = start(1, ClusterConfig::default());
        assert_eq!(cluster.replicas(), 1);
        let outcome = cluster.execute_sync("getItem", &[Value::Int(7)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(7));
        for (_, route) in cluster.routes() {
            assert_eq!(route, Route::Pinned(0));
        }
    }

    #[test]
    fn cold_types_pin_to_one_replica() {
        let cluster = start(4, ClusterConfig::default());
        for i in 0..20 {
            let outcome = cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            assert_eq!(outcome.rows().len(), 1);
        }
        let active: Vec<usize> = cluster
            .replica_stats()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.queries > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(active.len(), 1, "cold type ran on replicas {active:?}");
    }

    #[test]
    fn replicated_type_spreads_by_parameter_hash() {
        let config = ClusterConfig {
            replicate_statements: vec!["getItem".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        // Same key → same replica (twice); across keys the load spreads.
        let h1 = cluster.execute("getItem", &[Value::Int(1)]).unwrap();
        let h2 = cluster.execute("getItem", &[Value::Int(1)]).unwrap();
        assert_eq!(h1.replica(), h2.replica());
        h1.wait().unwrap();
        h2.wait().unwrap();
        for i in 0..64 {
            let outcome = cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            assert_eq!(outcome.rows().len(), 1, "item {i}");
        }
        let active = cluster
            .replica_stats()
            .iter()
            .filter(|s| s.queries > 0)
            .count();
        assert!(active > 1, "hot type never left one replica");
    }

    #[test]
    fn updates_pin_to_the_write_replica_and_are_visible_everywhere() {
        let cluster = start(3, ClusterConfig::default());
        // getItem (query type 0) homes on replica 0, allItems on replica 1 —
        // read the insert back through a statement pinned elsewhere.
        let outcome = cluster
            .execute_sync(
                "addItem",
                &[Value::Int(9_000), Value::text("HISTORY"), Value::Float(1.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let all = cluster.execute_sync("allItems", &[]).unwrap();
        assert_eq!(all.rows().len(), 201);
        // Updates stay on replica 0 regardless of load.
        assert_eq!(cluster.replica_stats()[0].updates, 1);
        assert!(cluster.replica_stats()[1..].iter().all(|s| s.updates == 0));
    }

    /// The merge step: a parameterless ordered statement on a hot route
    /// scatters over all replicas with disjoint scan partitions and the
    /// ordered merge reassembles the exact single-engine result.
    #[test]
    fn fanout_ordered_merge_matches_single_engine() {
        let config = ClusterConfig {
            replicate_statements: vec!["allItems".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        let outcome = cluster.execute_sync("allItems", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 200);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64), "order broken at {i}");
        }
        // Every replica executed its partition.
        assert!(
            cluster.replica_stats().iter().all(|s| s.queries == 1),
            "scatter did not reach all replicas: {:?}",
            cluster.replica_stats()
        );
    }

    #[test]
    fn fanout_grouped_merge_recombines_partial_aggregates() {
        let config = ClusterConfig {
            replicate_statements: vec!["costBySubject".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        let outcome = cluster.execute_sync("costBySubject", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 2);
        let history = rows
            .iter()
            .find(|r| r[0] == Value::text("HISTORY"))
            .unwrap();
        // 50 HISTORY items, ids 0,4,..,196; costs id % 50.
        let expected_sum: f64 = (0..200i64)
            .filter(|i| i % 4 == 0)
            .map(|i| (i % 50) as f64)
            .sum();
        assert_eq!(history[1], Value::Float(expected_sum));
        assert_eq!(history[2], Value::Int(50));
        assert_eq!(history[3], Value::Float(0.0));
        assert_eq!(history[4], Value::Float(48.0));
    }

    /// Observability satellite: under concurrent fanout the cluster-level
    /// latency histogram must be the exact bucket-wise sum of the per-replica
    /// histograms (lossless merge), its percentiles must be monotone, and
    /// the scatter/merge phase histograms must have seen every fanout.
    #[test]
    fn fanout_histograms_merge_losslessly() {
        let config = ClusterConfig {
            replicate_statements: vec!["allItems".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        const FANOUTS: usize = 16;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..FANOUTS / 4 {
                        let outcome = cluster.execute_sync("allItems", &[]).unwrap();
                        assert_eq!(outcome.rows().len(), 200);
                    }
                });
            }
        });

        let total = cluster.stats();
        let replicas = cluster.replica_stats();
        // Each fanout scattered one partition per replica.
        assert_eq!(total.queries, (FANOUTS * cluster.replicas()) as u64);
        // Lossless merge: bucket-wise the cluster histogram is the sum of
        // the replica histograms, as if one engine had seen all the traffic.
        let mut merged = shareddb_common::metrics::HistogramSnapshot::default();
        for replica in &replicas {
            merged.merge_from(&replica.histogram);
        }
        assert_eq!(total.histogram.counts, merged.counts);
        assert_eq!(total.histogram.count, merged.count);
        assert_eq!(total.histogram.sum_us, merged.sum_us);
        assert_eq!(total.histogram.max_us, merged.max_us);
        // Percentiles monotone and bounded by the exact max.
        let p50 = total.histogram.percentile_us(0.50);
        let p95 = total.histogram.percentile_us(0.95);
        let p99 = total.histogram.percentile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= total.histogram.max_us);
        assert_eq!(total.p99_latency.as_micros() as u64, p99);

        // The cluster phase table saw every scatter and every merge.
        let phases = cluster.cluster_phase_stats();
        let all_items = phases.iter().find(|s| s.statement == "allItems").unwrap();
        assert_eq!(all_items.phase(Phase::Scatter).count, FANOUTS as u64);
        assert_eq!(all_items.phase(Phase::Merge).count, FANOUTS as u64);
        // Each replica recorded execute/total phases for its partitions.
        for replica in cluster.replica_phase_stats() {
            let snap = replica.iter().find(|s| s.statement == "allItems").unwrap();
            assert_eq!(snap.phase(Phase::Execute).count, FANOUTS as u64);
            assert_eq!(snap.phase(Phase::Total).count, FANOUTS as u64);
        }

        // reset_stats zeroes replicas and the cluster phase table.
        cluster.reset_stats();
        assert_eq!(cluster.stats().queries, 0);
        assert!(cluster.stats().histogram.is_empty());
        assert!(cluster.cluster_phase_stats().is_empty());
    }

    /// Dynamic promotion: a statement type whose submission rate crosses the
    /// threshold is promoted to replicated routing by the stats-driven
    /// refresh, without any static configuration.
    #[test]
    fn hot_types_are_promoted_from_engine_stats() {
        let config = ClusterConfig {
            hot_rate_per_s: 50.0,
            refresh_interval: Duration::from_millis(10),
            ..ClusterConfig::default()
        };
        let cluster = start(2, config);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut promoted = false;
        while std::time::Instant::now() < deadline {
            for i in 0..64 {
                cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            }
            if cluster
                .routes()
                .iter()
                .any(|(name, route)| name == "getItem" && *route == Route::Replicated)
            {
                promoted = true;
                break;
            }
        }
        assert!(
            promoted,
            "hot type was never promoted: {:?}",
            cluster.routes()
        );
        // Updates are never promoted, whatever their rate looks like.
        assert!(cluster
            .routes()
            .iter()
            .any(|(name, route)| name == "addItem" && *route == Route::Pinned(0)));
    }

    // -- join fanout -------------------------------------------------------

    use shareddb_common::{Expr, SortKey};
    use shareddb_core::plan::{PlanBuilder, StatementSpec as Spec};

    /// ITEM ⨝ ORDER_LINE catalog (the `getBestSellers` shape): ITEM's pk is
    /// the join key, ORDER_LINE joins on a non-key column.
    fn join_catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDER_LINE")
                    .column("OL_ID", DataType::Int)
                    .column("OL_I_ID", DataType::Int)
                    .column("OL_QTY", DataType::Int)
                    .column("OL_WEIGHT", DataType::Float)
                    .primary_key(&["OL_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..40i64)
                    .map(|i| tuple![i, format!("S{}", i % 3), (i % 7) as f64])
                    .collect(),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ORDER_LINE",
                (0..200i64)
                    .map(|ol| tuple![ol, (ol * 13) % 40, 1 + ol % 5, ((ol * 13) % 40) as f64])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    /// Builds the bestsellers-style plan: two scans, a hash equi-join on the
    /// ITEM pk, a group-by whose key contains the join key, a Top-N root;
    /// plus a plain join root, an AVG group-by root and a non-key join.
    fn join_cluster(replicas: usize, replicate: &[&str]) -> ClusterEngine {
        let catalog = join_catalog();
        let mut b = PlanBuilder::new(&catalog);
        let item_scan = b.table_scan("ITEM").unwrap();
        let ol_scan = b.table_scan("ORDER_LINE").unwrap();
        let join = b
            .hash_join(item_scan, ol_scan, "ITEM.I_ID", "ORDER_LINE.OL_I_ID")
            .unwrap();
        let group = b
            .group_by(
                join,
                vec!["ITEM.I_ID", "ITEM.I_SUBJECT"],
                vec![(AggregateFunction::Sum, "ORDER_LINE.OL_QTY", "TOTAL")],
            )
            .unwrap();
        let topn = b
            .top_n(group, vec![SortKey::desc(2), SortKey::asc(0)])
            .unwrap();
        let avg_group = b
            .group_by(
                item_scan,
                vec!["ITEM.I_SUBJECT"],
                vec![
                    (AggregateFunction::Avg, "ITEM.I_COST", "AVG_COST"),
                    (AggregateFunction::Count, "ITEM.I_ID", "CNT"),
                ],
            )
            .unwrap();
        // Non-key equi-join: neither side joins on its primary key.
        let nonkey_join = b
            .hash_join(item_scan, ol_scan, "ITEM.I_COST", "ORDER_LINE.OL_QTY")
            .unwrap();
        // Cross-type equi-join: keyed on the ITEM pk, but Int joins Float —
        // join equality is numeric-normalizing while the partition hash is
        // type-tagged, so this shape must never scatter.
        let crosstype_join = b
            .hash_join(item_scan, ol_scan, "ITEM.I_ID", "ORDER_LINE.OL_WEIGHT")
            .unwrap();
        let plan = b.build();

        let mut registry = StatementRegistry::new();
        registry
            .register(
                Spec::query("bestsellers", topn)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(
                        ol_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(0).gt_eq(Expr::param(0)),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate)
                    .activate(group, ActivationTemplate::Having { predicate: None })
                    .activate(topn, ActivationTemplate::TopN { limit: 10 }),
            )
            .unwrap();
        // Same shape with a HAVING under the Top-N: the grouping key contains
        // the join (= partition) key, so every group is complete within its
        // partition and the HAVING filters locally on final values.
        registry
            .register(
                Spec::query("bestsellersHaving", topn)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(
                        ol_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(0).gt_eq(Expr::param(0)),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate)
                    .activate(
                        group,
                        ActivationTemplate::Having {
                            predicate: Some(Expr::col(2).gt(Expr::param(1))),
                        },
                    )
                    .activate(topn, ActivationTemplate::TopN { limit: 10 }),
            )
            .unwrap();
        registry
            .register(
                Spec::query("joinAll", join)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(
                        ol_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate),
            )
            .unwrap();
        registry
            .register(
                Spec::query("avgCost", avg_group)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(avg_group, ActivationTemplate::Having { predicate: None }),
            )
            .unwrap();
        registry
            .register(
                Spec::query("nonKeyJoin", nonkey_join)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(
                        ol_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(nonkey_join, ActivationTemplate::Participate),
            )
            .unwrap();
        registry
            .register(
                Spec::query("crossTypeJoin", crosstype_join)
                    .activate(
                        item_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(
                        ol_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(crosstype_join, ActivationTemplate::Participate),
            )
            .unwrap();
        ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ClusterConfig {
                replicas,
                replicate_statements: replicate.iter().map(|s| s.to_string()).collect(),
                ..ClusterConfig::default()
            },
        )
        .unwrap()
    }

    fn sorted_rows(outcome: &QueryOutcome) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> =
            outcome.rows().iter().map(|r| r.values().to_vec()).collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }

    /// The tentpole shape: a parameterised equi-join on the partitioning key
    /// (ITEM pk ⨝ ORDER_LINE.OL_I_ID) with group-by and Top-N scatters over
    /// all replicas and merges to exactly the single-replica result.
    #[test]
    fn join_fanout_matches_single_replica() {
        let single = join_cluster(1, &[]);
        let fanned = join_cluster(4, &["bestsellers", "joinAll"]);
        let params = [Value::Int(20)];
        let expect = single.execute_sync("bestsellers", &params).unwrap();
        let got = fanned.execute_sync("bestsellers", &params).unwrap();
        assert_eq!(
            expect.rows(),
            got.rows(),
            "fanned-out join result diverged from single engine"
        );
        assert!(!got.rows().is_empty());
        // The scatter really used every replica.
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "join fanout did not reach all replicas: {:?}",
            fanned.replica_stats()
        );
        // A join root without blocking operators concat-merges completely.
        let expect = sorted_rows(&single.execute_sync("joinAll", &[]).unwrap());
        let got = sorted_rows(&fanned.execute_sync("joinAll", &[]).unwrap());
        assert_eq!(expect.len(), 200);
        assert_eq!(expect, got, "concat join merge lost or duplicated rows");
    }

    /// HAVING below a Top-N root (the real `getBestSellers` shape): groups
    /// are partition-complete, the HAVING filters locally, and the fanned
    /// result matches the single engine exactly.
    #[test]
    fn having_under_topn_fanout_matches_single_replica() {
        let single = join_cluster(1, &[]);
        let fanned = join_cluster(4, &["bestsellersHaving"]);
        let params = [Value::Int(0), Value::Int(20)];
        let expect = single.execute_sync("bestsellersHaving", &params).unwrap();
        let got = fanned.execute_sync("bestsellersHaving", &params).unwrap();
        assert!(!expect.rows().is_empty(), "threshold filtered everything");
        assert!(expect.rows().len() < 10, "threshold filtered nothing");
        assert_eq!(expect.rows(), got.rows());
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "HAVING-under-TopN did not scatter: {:?}",
            fanned.replica_stats()
        );
    }

    /// AVG fanout: partial (sum, count) shipping recombines to the exact
    /// single-engine average.
    #[test]
    fn avg_fanout_recombines_exactly() {
        let single = join_cluster(1, &[]);
        let fanned = join_cluster(4, &["avgCost"]);
        let expect = single.execute_sync("avgCost", &[]).unwrap();
        let got = fanned.execute_sync("avgCost", &[]).unwrap();
        assert_eq!(got.rows().len(), 3);
        let find = |o: &QueryOutcome, key: &Value| {
            o.rows()
                .iter()
                .find(|r| &r[0] == key)
                .map(|r| r.values().to_vec())
                .unwrap()
        };
        for row in expect.rows() {
            assert_eq!(
                find(&got, &row[0]),
                row.values().to_vec(),
                "AVG diverged for group {:?}",
                row[0]
            );
        }
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "AVG fanout did not scatter: {:?}",
            fanned.replica_stats()
        );
    }

    /// A cross-type equi-join (Int pk = Float column) must NOT fan out even
    /// though it is keyed on a primary key: `Int(5)` joins `Float(5.0)` under
    /// SQL equality, but the type-tagged partition hash would send the two
    /// rows to different partitions and silently drop the match. The result
    /// must equal the single-replica execution AND run whole on one replica.
    #[test]
    fn cross_type_join_stays_whole_and_exact() {
        let single = join_cluster(1, &[]);
        let cluster = join_cluster(4, &["crossTypeJoin"]);
        let expect = sorted_rows(&single.execute_sync("crossTypeJoin", &[]).unwrap());
        let got = sorted_rows(&cluster.execute_sync("crossTypeJoin", &[]).unwrap());
        assert!(!expect.is_empty(), "cross-type join matched nothing");
        assert_eq!(expect, got, "cross-type join lost matches");
        let active = cluster
            .replica_stats()
            .iter()
            .filter(|s| s.queries > 0)
            .count();
        assert_eq!(
            active,
            1,
            "cross-type join was scattered: {:?}",
            cluster.replica_stats()
        );
    }

    /// A join keyed on neither side's primary key must NOT fan out: it runs
    /// whole on one replica (round-robin of the replicated route).
    #[test]
    fn non_key_join_stays_whole() {
        let cluster = join_cluster(4, &["nonKeyJoin"]);
        cluster.execute_sync("nonKeyJoin", &[]).unwrap();
        let active = cluster
            .replica_stats()
            .iter()
            .filter(|s| s.queries > 0)
            .count();
        assert_eq!(
            active,
            1,
            "non-key join was scattered: {:?}",
            cluster.replica_stats()
        );
    }

    // -- multi-join chains & HAVING fanout (SQL-compiled) -------------------

    /// ITEM / ORDER_LINE / STOCK catalog: both ITEM and STOCK key their pk
    /// on the chain's join class; ORDER_LINE joins on a non-key column.
    fn chain_catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDER_LINE")
                    .column("OL_ID", DataType::Int)
                    .column("OL_I_ID", DataType::Int)
                    .column("OL_QTY", DataType::Int)
                    .primary_key(&["OL_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("STOCK")
                    .column("ST_I_ID", DataType::Int)
                    .column("ST_QTY", DataType::Int)
                    .primary_key(&["ST_I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..40i64)
                    .map(|i| tuple![i, format!("S{}", i % 3), (i % 7) as f64])
                    .collect(),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ORDER_LINE",
                (0..200i64)
                    .map(|ol| tuple![ol, (ol * 13) % 40, 1 + ol % 5])
                    .collect(),
            )
            .unwrap();
        catalog
            .bulk_load(
                "STOCK",
                (0..40i64).map(|i| tuple![i, (i * 3) % 11]).collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    const CHAIN_WORKLOAD: &[(&str, &str)] = &[
        // Two-join chain, every join keyed on the I_ID equivalence class
        // (ITEM pk and STOCK pk are both members) → co-partitionable.
        (
            "chainAll",
            "SELECT * FROM ITEM I, ORDER_LINE OL, STOCK S \
             WHERE I.I_ID = OL.OL_I_ID AND I.I_ID = S.ST_I_ID",
        ),
        // The second join leaves the partition-key class (OL_QTY is not in
        // it) → must stay pinned whole.
        (
            "offClassChain",
            "SELECT * FROM ITEM I, ORDER_LINE OL, STOCK S \
             WHERE I.I_ID = OL.OL_I_ID AND OL.OL_QTY = S.ST_QTY",
        ),
        // Group-by root with HAVING: groups span partitions, so HAVING is
        // deferred to the merge (partial mode).
        (
            "bigSubjects",
            "SELECT I_SUBJECT, SUM(I_COST) FROM ITEM GROUP BY I_SUBJECT \
             HAVING SUM(I_COST) > ?",
        ),
        // SQL-compiled AVG fanout: the compiler emits an *identity*
        // projection, which must not strip the hidden AVG count columns the
        // partial rows ship to the merge.
        (
            "avgBySubject",
            "SELECT I_SUBJECT, AVG(I_COST) FROM ITEM GROUP BY I_SUBJECT",
        ),
        (
            "avgHaving",
            "SELECT I_SUBJECT, AVG(I_COST) FROM ITEM GROUP BY I_SUBJECT \
             HAVING AVG(I_COST) > ?",
        ),
    ];

    fn chain_cluster(replicas: usize, replicate: &[&str]) -> ClusterEngine {
        let catalog = chain_catalog();
        let (plan, registry) = compile_workload(&catalog, CHAIN_WORKLOAD).unwrap();
        ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ClusterConfig {
                replicas,
                replicate_statements: replicate.iter().map(|s| s.to_string()).collect(),
                ..ClusterConfig::default()
            },
        )
        .unwrap()
    }

    /// A two-join chain keyed on the partition-key class end to end scatters
    /// over all replicas and concat-merges to exactly the single-engine
    /// result.
    #[test]
    fn multi_join_chain_fanout_matches_single_replica() {
        let single = chain_cluster(1, &[]);
        let fanned = chain_cluster(4, &["chainAll"]);
        let expect = sorted_rows(&single.execute_sync("chainAll", &[]).unwrap());
        let got = sorted_rows(&fanned.execute_sync("chainAll", &[]).unwrap());
        assert_eq!(expect.len(), 200); // every ORDER_LINE matches one item + stock
        assert_eq!(expect, got, "chain fanout lost or duplicated rows");
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "chain fanout did not reach all replicas: {:?}",
            fanned.replica_stats()
        );
    }

    /// A chain whose second join leaves the partition-key class must not
    /// scatter: co-location would break at the second join.
    #[test]
    fn off_class_chain_stays_whole() {
        let single = chain_cluster(1, &[]);
        let cluster = chain_cluster(4, &["offClassChain"]);
        let expect = sorted_rows(&single.execute_sync("offClassChain", &[]).unwrap());
        let got = sorted_rows(&cluster.execute_sync("offClassChain", &[]).unwrap());
        assert!(!expect.is_empty());
        assert_eq!(expect, got);
        let active = cluster
            .replica_stats()
            .iter()
            .filter(|s| s.queries > 0)
            .count();
        assert_eq!(
            active,
            1,
            "off-class chain was scattered: {:?}",
            cluster.replica_stats()
        );
    }

    /// HAVING on a fanned-out group-by root: the predicate must see the
    /// recombined totals, not per-partition partials. Thresholds are picked
    /// around one group's exact total, so a partition-local HAVING (which
    /// would drop every partial of that group) cannot pass the test.
    #[test]
    fn having_fanout_filters_on_recombined_groups() {
        let single = chain_cluster(1, &[]);
        let fanned = chain_cluster(4, &["bigSubjects"]);
        // All groups with their totals.
        let all = single
            .execute_sync("bigSubjects", &[Value::Float(-1.0)])
            .unwrap();
        assert_eq!(all.rows().len(), 3);
        let top_total = all
            .rows()
            .iter()
            .map(|r| r[1].as_float().unwrap())
            .fold(f64::MIN, f64::max);
        for threshold in [top_total - 0.5, top_total, -1.0] {
            let params = [Value::Float(threshold)];
            let expect = sorted_rows(&single.execute_sync("bigSubjects", &params).unwrap());
            let got = sorted_rows(&fanned.execute_sync("bigSubjects", &params).unwrap());
            assert_eq!(expect, got, "HAVING fanout diverged at {threshold}");
        }
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "HAVING fanout did not scatter: {:?}",
            fanned.replica_stats()
        );
        // The strictest threshold keeps exactly the top group.
        let got = fanned
            .execute_sync("bigSubjects", &[Value::Float(top_total - 0.5)])
            .unwrap();
        assert_eq!(got.rows().len(), 1);
    }

    /// SQL-compiled AVG statements fan out correctly despite their identity
    /// projection: partial-mode executions skip the projection so the hidden
    /// (sum, count) columns reach the merge, and the recombined average is
    /// exact. Regression test for a merge-width crash found in review.
    #[test]
    fn sql_compiled_avg_fanout_matches_single_replica() {
        let single = chain_cluster(1, &[]);
        let fanned = chain_cluster(4, &["avgBySubject", "avgHaving"]);
        let expect = sorted_rows(&single.execute_sync("avgBySubject", &[]).unwrap());
        let got = sorted_rows(&fanned.execute_sync("avgBySubject", &[]).unwrap());
        assert_eq!(expect.len(), 3);
        assert_eq!(expect, got, "SQL-compiled AVG fanout diverged");
        // Deferred HAVING over the *finalized* average.
        let all = single
            .execute_sync("avgHaving", &[Value::Float(-1.0)])
            .unwrap();
        let top_avg = all
            .rows()
            .iter()
            .map(|r| r[1].as_float().unwrap())
            .fold(f64::MIN, f64::max);
        for threshold in [top_avg - 0.01, -1.0] {
            let params = [Value::Float(threshold)];
            let expect = sorted_rows(&single.execute_sync("avgHaving", &params).unwrap());
            let got = sorted_rows(&fanned.execute_sync("avgHaving", &params).unwrap());
            assert_eq!(expect, got, "AVG HAVING fanout diverged at {threshold}");
        }
        assert!(
            fanned.replica_stats().iter().all(|s| s.queries >= 1),
            "AVG statements did not scatter: {:?}",
            fanned.replica_stats()
        );
    }

    /// The admission bound is accounted per replica: saturating one replica's
    /// queue rejects retryably without touching the others.
    #[test]
    fn queue_depth_is_per_replica() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        let cluster = ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig {
                eager_heartbeat: false,
                heartbeat: shareddb_core::HeartbeatPolicy::Fixed(Duration::from_secs(30)),
                ..EngineConfig::default()
            },
            ClusterConfig::with_replicas(2),
        )
        .unwrap();
        // Arm the heartbeat pacing of the home replica of getItem.
        cluster.execute_sync("getItem", &[Value::Int(0)]).unwrap();
        let opts = SubmitOptions {
            max_queue_depth: Some(2),
            ..SubmitOptions::default()
        };
        let mut handles = Vec::new();
        let mut rejected = 0;
        for i in 0..6 {
            match cluster.submit("getItem", &[Value::Int(i)], opts.clone()) {
                Ok(h) => handles.push(h),
                Err(Error::Overloaded(_)) => rejected += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(rejected, 4, "per-replica bound of 2 not enforced");
        // The other replica's queue is untouched: a statement pinned there
        // is admitted under the same bound.
        cluster
            .submit("allItems", &[], opts)
            .expect("other replica should admit");
        drop(handles);
    }

    /// Read-your-writes across 4 replicas: a pipelined INSERT → SELECT on
    /// the same session observes the write on every round when the read
    /// carries the session's write fence, and provably reads stale without
    /// it (the negative control routes to a replica whose batch forms before
    /// the write replica's paced group commit).
    #[test]
    fn read_your_writes_across_replicas() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        let cluster = ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig {
                eager_heartbeat: false,
                heartbeat: shareddb_core::HeartbeatPolicy::Fixed(Duration::from_millis(60)),
                ..EngineConfig::default()
            },
            ClusterConfig::with_replicas(4),
        )
        .unwrap();
        // Heat the write replica's pacing clock (updates pin to replica 0,
        // like getItem) so the negative-control insert waits out the full
        // 60ms pacing. The read statement's home replica stays cold — its
        // first batch forms immediately.
        cluster.execute_sync("getItem", &[Value::Int(0)]).unwrap();
        // Negative control: unfenced pipelined write → read loses the race.
        let write = cluster
            .execute(
                "addItem",
                &[Value::Int(9_000), Value::text("HISTORY"), Value::Float(1.0)],
            )
            .unwrap();
        let stale = cluster.execute_sync("allItems", &[]).unwrap();
        assert_eq!(
            stale.rows().len(),
            200,
            "unfenced pipelined read should miss the still-uncommitted insert"
        );
        write.wait().unwrap();
        // Fenced rounds: 100% of N pipelined write→read pairs observe the
        // session's write, whichever replica (or fanout) serves the read.
        for round in 0..8i64 {
            let fence = Arc::new(shareddb_core::WriteFence::new());
            let write = cluster
                .submit(
                    "addItem",
                    &[
                        Value::Int(10_000 + round),
                        Value::text("FICTION"),
                        Value::Float(2.0),
                    ],
                    SubmitOptions {
                        write_fence: Some(Arc::clone(&fence)),
                        ..SubmitOptions::default()
                    },
                )
                .unwrap();
            let rows = cluster
                .submit(
                    "allItems",
                    &[],
                    SubmitOptions {
                        read_after: Some(Arc::clone(&fence)),
                        ..SubmitOptions::default()
                    },
                )
                .unwrap()
                .wait()
                .unwrap();
            assert!(
                rows.rows()
                    .iter()
                    .any(|r| r[0] == Value::Int(10_000 + round)),
                "round {round}: fenced read missed the session's write"
            );
            write.wait().unwrap();
        }
    }
}

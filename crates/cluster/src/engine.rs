//! The clustered engine: N replicas of the shared-operator runtime behind one
//! submit interface.

use crate::merge::{merge_results, MergeSpec};
use crate::router::{Route, Router};
use crate::ClusterConfig;
use shareddb_common::agg::AggregateFunction;
use shareddb_common::{Error, Result, Value};
use shareddb_core::engine::{QueryHandle, QueryOutcome, ResultSet};
use shareddb_core::plan::{ActivationTemplate, StatementKind};
use shareddb_core::stats::EngineStatsSnapshot;
use shareddb_core::{
    Engine, EngineConfig, GlobalPlan, OperatorSpec, StatementRegistry, StatementSpec, SubmitOptions,
};
use shareddb_storage::Catalog;
use std::sync::Arc;

/// Fanout ("scatter/gather") execution plan of one eligible statement type.
#[derive(Debug, Clone)]
struct FanoutSpec {
    merge: MergeSpec,
    /// Statement-level LIMIT, re-applied after the merge.
    limit: Option<usize>,
}

/// N engine replicas over one shared [`Catalog`], fronted by a [`Router`]
/// that dispatches each admitted statement by type (see the crate docs).
pub struct ClusterEngine {
    engines: Vec<Engine>,
    router: Router,
    registry: StatementRegistry,
    fanout: Vec<Option<FanoutSpec>>,
    catalog: Arc<Catalog>,
}

impl ClusterEngine {
    /// Starts `config.replicas` engines over one shared catalog and global
    /// plan. With `replicas == 1` the cluster behaves exactly like a single
    /// [`Engine`] (everything pinned to replica 0, no fanout).
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        config: ClusterConfig,
    ) -> Result<ClusterEngine> {
        let replicas = config.replicas.max(1);
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            engines.push(Engine::start(
                Arc::clone(&catalog),
                plan.clone(),
                registry.clone(),
                engine_config.clone(),
            )?);
        }
        let router = Router::new(&registry, &config);
        let fanout = registry
            .iter()
            .map(|spec| fanout_spec(&plan, spec))
            .collect();
        Ok(ClusterEngine {
            engines,
            router,
            registry,
            fanout,
            catalog,
        })
    }

    /// The shared catalog.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// Number of engine replicas.
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Submits a statement; the router picks the replica (or fans the query
    /// out over all replicas with partitioned scans).
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<ClusterHandle> {
        let (index, spec) = self.registry.get(statement)?;
        self.router.note_submit(index);
        self.router
            .maybe_refresh(|| self.engines.iter().map(|e| e.queued()).collect());
        if !spec.is_update()
            && self.engines.len() > 1
            && params.is_empty()
            && matches!(self.router.route(index), Route::Replicated)
        {
            if let Some(fanout) = &self.fanout[index] {
                return self.submit_fanout(statement, params, &opts, fanout);
            }
        }
        let replica = self.router.pick_replica(index, params);
        let handle = self.engines[replica].submit(statement, params, opts)?;
        Ok(ClusterHandle::Single { replica, handle })
    }

    fn submit_fanout(
        &self,
        statement: &str,
        params: &[Value],
        opts: &SubmitOptions,
        fanout: &FanoutSpec,
    ) -> Result<ClusterHandle> {
        let of = self.engines.len() as u32;
        let mut parts = Vec::with_capacity(self.engines.len());
        for (index, engine) in self.engines.iter().enumerate() {
            let mut opts = opts.clone();
            opts.scan_partition = Some((index as u32, of));
            // On a partial-admission failure the already-submitted partitions
            // complete into dropped handles (harmless discarded work) and the
            // caller sees the rejection.
            let handle = engine.submit(statement, params, opts)?;
            parts.push(FanoutPart { handle, done: None });
        }
        Ok(ClusterHandle::Fanout {
            parts,
            merge: fanout.merge.clone(),
            limit: fanout.limit,
        })
    }

    /// Submits and returns the handle (default options).
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<ClusterHandle> {
        self.submit(statement, params, SubmitOptions::default())
    }

    /// Submits and blocks until the (merged) result is available.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<QueryOutcome> {
        self.execute(statement, params)?.wait()
    }

    /// Aggregated statistics over all replicas.
    pub fn stats(&self) -> EngineStatsSnapshot {
        let mut total = EngineStatsSnapshot::default();
        let mut weighted_latency_nanos: u128 = 0;
        for stats in self.engines.iter().map(|e| e.stats()) {
            let completed = stats.queries + stats.updates;
            weighted_latency_nanos += stats.mean_latency.as_nanos() * completed as u128;
            total.batches += stats.batches;
            total.queries += stats.queries;
            total.updates += stats.updates;
            total.failed += stats.failed;
            total.result_rows += stats.result_rows;
            total.max_latency = total.max_latency.max(stats.max_latency);
            total.p99_latency = total.p99_latency.max(stats.p99_latency);
        }
        let completed = (total.queries + total.updates) as u128;
        if let Some(mean) = weighted_latency_nanos.checked_div(completed) {
            total.mean_latency = std::time::Duration::from_nanos(mean as u64);
        }
        total
    }

    /// Per-replica statistics snapshots, in replica order.
    pub fn replica_stats(&self) -> Vec<EngineStatsSnapshot> {
        self.engines.iter().map(|e| e.stats()).collect()
    }

    /// Statements queued but not yet batched, summed over replicas.
    pub fn queued(&self) -> usize {
        self.engines.iter().map(|e| e.queued()).sum()
    }

    /// Per-replica admission-queue depths.
    pub fn queued_per_replica(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.queued()).collect()
    }

    /// Current route per statement type (name, route).
    pub fn routes(&self) -> Vec<(String, Route)> {
        self.registry
            .iter()
            .map(|s| s.name.clone())
            .zip(self.router.routes())
            .collect()
    }

    /// Stops every replica.
    pub fn shutdown(&mut self) {
        for engine in &mut self.engines {
            engine.shutdown();
        }
    }
}

impl Drop for ClusterEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// One partition of a fanned-out execution.
pub struct FanoutPart {
    handle: QueryHandle,
    done: Option<Result<QueryOutcome>>,
}

/// Handle to a statement submitted to the cluster. Like
/// [`shareddb_core::engine::QueryHandle`] it supports blocking
/// ([`ClusterHandle::wait`]) and event-driven polling
/// ([`ClusterHandle::try_wait`], paired with
/// [`SubmitOptions::completion_waker`] — fanned-out executions fire the waker
/// once per partition, and `try_wait` reports `Some` only when every
/// partition has completed and the merge ran).
pub enum ClusterHandle {
    /// The statement runs wholly on one replica.
    Single {
        /// Executing replica.
        replica: usize,
        /// The replica's handle.
        handle: QueryHandle,
    },
    /// The statement was scattered over all replicas with partitioned scans.
    Fanout {
        /// Per-partition handles and buffered outcomes.
        parts: Vec<FanoutPart>,
        /// How the partials recombine.
        merge: MergeSpec,
        /// Statement-level LIMIT re-applied after the merge.
        limit: Option<usize>,
    },
}

impl ClusterHandle {
    /// The executing replica for single-replica submissions (fanned-out
    /// executions run everywhere).
    pub fn replica(&self) -> Option<usize> {
        match self {
            ClusterHandle::Single { replica, .. } => Some(*replica),
            ClusterHandle::Fanout { .. } => None,
        }
    }

    /// Blocks until the (merged) outcome is available.
    pub fn wait(self) -> Result<QueryOutcome> {
        match self {
            ClusterHandle::Single { handle, .. } => handle.wait(),
            ClusterHandle::Fanout {
                parts,
                merge,
                limit,
            } => {
                let mut partials = Vec::with_capacity(parts.len());
                for part in parts {
                    let outcome = match part.done {
                        Some(outcome) => outcome,
                        None => part.handle.wait(),
                    };
                    partials.push(expect_rows(outcome?)?);
                }
                finish_merge(&merge, limit, partials)
            }
        }
    }

    /// Non-blocking poll: `None` while any partition is in flight,
    /// `Some(outcome)` exactly once when the merged result is ready.
    pub fn try_wait(&mut self) -> Option<Result<QueryOutcome>> {
        match self {
            ClusterHandle::Single { handle, .. } => handle.try_wait(),
            ClusterHandle::Fanout {
                parts,
                merge,
                limit,
            } => {
                if parts.is_empty() {
                    return None; // outcome already consumed
                }
                let mut all_done = true;
                for part in parts.iter_mut() {
                    if part.done.is_none() {
                        match part.handle.try_wait() {
                            Some(outcome) => part.done = Some(outcome),
                            None => all_done = false,
                        }
                    }
                }
                if !all_done {
                    return None;
                }
                let parts = std::mem::take(parts);
                let mut partials = Vec::with_capacity(parts.len());
                for part in parts {
                    match part
                        .done
                        .expect("all partitions done")
                        .and_then(expect_rows)
                    {
                        Ok(rows) => partials.push(rows),
                        Err(e) => return Some(Err(e)),
                    }
                }
                Some(finish_merge(merge, *limit, partials))
            }
        }
    }
}

fn expect_rows(outcome: QueryOutcome) -> Result<ResultSet> {
    match outcome {
        QueryOutcome::Rows(rows) => Ok(rows),
        QueryOutcome::Updated { .. } => Err(Error::Internal(
            "fanned-out statement produced an update outcome".into(),
        )),
    }
}

fn finish_merge(
    merge: &MergeSpec,
    limit: Option<usize>,
    partials: Vec<ResultSet>,
) -> Result<QueryOutcome> {
    let mut merged = merge_results(merge, partials)?;
    if let Some(limit) = limit {
        merged.rows.truncate(limit);
    }
    Ok(QueryOutcome::Rows(merged))
}

// ---------------------------------------------------------------------------
// Fanout eligibility
// ---------------------------------------------------------------------------

/// Decides whether a statement type can be scattered over partitioned scans,
/// and how its partial results merge. Conservative by construction: a shape
/// this function does not recognise is simply not fanned out (it still
/// benefits from hash-partitioned input routing when hot).
fn fanout_spec(plan: &GlobalPlan, spec: &StatementSpec) -> Option<FanoutSpec> {
    let StatementKind::Query {
        root,
        projection,
        compute,
        limit,
    } = &spec.kind
    else {
        return None;
    };
    // Computed projections and non-identity column projections change the
    // row layout relative to the root schema the merge keys index into.
    if !compute.is_empty() {
        return None;
    }
    let width = plan.node(*root).schema.len();
    if !projection.is_empty() && *projection != (0..width).collect::<Vec<_>>() {
        return None;
    }

    let mut scans = 0usize;
    let mut topn_limit: Option<usize> = None;
    for (op, template) in &spec.activations {
        let node = plan.node(*op);
        match (&node.spec, template) {
            (OperatorSpec::TableScan { .. }, ActivationTemplate::Scan { .. }) => scans += 1,
            (OperatorSpec::Filter, ActivationTemplate::Filter { .. }) => {}
            (OperatorSpec::Sort { .. }, ActivationTemplate::Participate) if *op == *root => {}
            (OperatorSpec::TopN { .. }, ActivationTemplate::TopN { limit }) if *op == *root => {
                topn_limit = Some(*limit);
            }
            (OperatorSpec::GroupBy { .. }, ActivationTemplate::Having { predicate: None })
                if *op == *root => {}
            (OperatorSpec::Distinct, ActivationTemplate::Participate) if *op == *root => {}
            // Joins would lose cross-partition matches, probes bypass the
            // partitioned scan, HAVING over partial groups is wrong, and any
            // blocking operator *below* the root breaks merge semantics.
            _ => return None,
        }
    }
    // Exactly one partitioned scan feeds the path; zero scans (e.g. probe
    // statements) or several (joins) are ineligible.
    if scans != 1 {
        return None;
    }

    let merge = match &plan.node(*root).spec {
        OperatorSpec::TableScan { .. } | OperatorSpec::Filter => MergeSpec::Concat,
        OperatorSpec::Sort { keys } => MergeSpec::Ordered {
            keys: keys.clone(),
            limit: *limit,
        },
        OperatorSpec::TopN { keys } => MergeSpec::Ordered {
            keys: keys.clone(),
            limit: match (topn_limit, *limit) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        },
        OperatorSpec::GroupBy {
            group_columns,
            aggregates,
        } => {
            // Partial AVGs cannot be recombined, and a LIMIT over groups
            // would drop partial groups per partition.
            if limit.is_some()
                || aggregates
                    .iter()
                    .any(|a| a.function == AggregateFunction::Avg)
            {
                return None;
            }
            MergeSpec::Grouped {
                group_width: group_columns.len(),
                functions: aggregates.iter().map(|a| a.function).collect(),
            }
        }
        OperatorSpec::Distinct => {
            if limit.is_some() {
                return None;
            }
            MergeSpec::Distinct
        }
        _ => return None,
    };
    Some(FanoutSpec {
        merge,
        limit: *limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;
    use shareddb_common::DataType;
    use shareddb_sql::compile_workload;
    use shareddb_storage::TableDef;
    use std::time::Duration;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..200i64)
                    .map(|i| {
                        tuple![
                            i,
                            if i % 4 == 0 { "HISTORY" } else { "FICTION" },
                            (i % 50) as f64
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    const WORKLOAD: &[(&str, &str)] = &[
        ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
        ("allItems", "SELECT * FROM ITEM ORDER BY I_ID"),
        (
            "costBySubject",
            "SELECT I_SUBJECT, SUM(I_COST), COUNT(*), MIN(I_COST), MAX(I_COST) \
             FROM ITEM GROUP BY I_SUBJECT",
        ),
        ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
    ];

    fn start(replicas: usize, config: ClusterConfig) -> ClusterEngine {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ClusterConfig { replicas, ..config },
        )
        .unwrap()
    }

    #[test]
    fn single_replica_behaves_like_one_engine() {
        let cluster = start(1, ClusterConfig::default());
        assert_eq!(cluster.replicas(), 1);
        let outcome = cluster.execute_sync("getItem", &[Value::Int(7)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(7));
        for (_, route) in cluster.routes() {
            assert_eq!(route, Route::Pinned(0));
        }
    }

    #[test]
    fn cold_types_pin_to_one_replica() {
        let cluster = start(4, ClusterConfig::default());
        for i in 0..20 {
            let outcome = cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            assert_eq!(outcome.rows().len(), 1);
        }
        let active: Vec<usize> = cluster
            .replica_stats()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.queries > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(active.len(), 1, "cold type ran on replicas {active:?}");
    }

    #[test]
    fn replicated_type_spreads_by_parameter_hash() {
        let config = ClusterConfig {
            replicate_statements: vec!["getItem".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        // Same key → same replica (twice); across keys the load spreads.
        let h1 = cluster.execute("getItem", &[Value::Int(1)]).unwrap();
        let h2 = cluster.execute("getItem", &[Value::Int(1)]).unwrap();
        assert_eq!(h1.replica(), h2.replica());
        h1.wait().unwrap();
        h2.wait().unwrap();
        for i in 0..64 {
            let outcome = cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            assert_eq!(outcome.rows().len(), 1, "item {i}");
        }
        let active = cluster
            .replica_stats()
            .iter()
            .filter(|s| s.queries > 0)
            .count();
        assert!(active > 1, "hot type never left one replica");
    }

    #[test]
    fn updates_pin_to_the_write_replica_and_are_visible_everywhere() {
        let cluster = start(3, ClusterConfig::default());
        // getItem (query type 0) homes on replica 0, allItems on replica 1 —
        // read the insert back through a statement pinned elsewhere.
        let outcome = cluster
            .execute_sync(
                "addItem",
                &[Value::Int(9_000), Value::text("HISTORY"), Value::Float(1.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let all = cluster.execute_sync("allItems", &[]).unwrap();
        assert_eq!(all.rows().len(), 201);
        // Updates stay on replica 0 regardless of load.
        assert_eq!(cluster.replica_stats()[0].updates, 1);
        assert!(cluster.replica_stats()[1..].iter().all(|s| s.updates == 0));
    }

    /// The merge step: a parameterless ordered statement on a hot route
    /// scatters over all replicas with disjoint scan partitions and the
    /// ordered merge reassembles the exact single-engine result.
    #[test]
    fn fanout_ordered_merge_matches_single_engine() {
        let config = ClusterConfig {
            replicate_statements: vec!["allItems".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        let outcome = cluster.execute_sync("allItems", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 200);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64), "order broken at {i}");
        }
        // Every replica executed its partition.
        assert!(
            cluster.replica_stats().iter().all(|s| s.queries == 1),
            "scatter did not reach all replicas: {:?}",
            cluster.replica_stats()
        );
    }

    #[test]
    fn fanout_grouped_merge_recombines_partial_aggregates() {
        let config = ClusterConfig {
            replicate_statements: vec!["costBySubject".into()],
            ..ClusterConfig::default()
        };
        let cluster = start(4, config);
        let outcome = cluster.execute_sync("costBySubject", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 2);
        let history = rows
            .iter()
            .find(|r| r[0] == Value::text("HISTORY"))
            .unwrap();
        // 50 HISTORY items, ids 0,4,..,196; costs id % 50.
        let expected_sum: f64 = (0..200i64)
            .filter(|i| i % 4 == 0)
            .map(|i| (i % 50) as f64)
            .sum();
        assert_eq!(history[1], Value::Float(expected_sum));
        assert_eq!(history[2], Value::Int(50));
        assert_eq!(history[3], Value::Float(0.0));
        assert_eq!(history[4], Value::Float(48.0));
    }

    /// Dynamic promotion: a statement type whose submission rate crosses the
    /// threshold is promoted to replicated routing by the stats-driven
    /// refresh, without any static configuration.
    #[test]
    fn hot_types_are_promoted_from_engine_stats() {
        let config = ClusterConfig {
            hot_rate_per_s: 50.0,
            refresh_interval: Duration::from_millis(10),
            ..ClusterConfig::default()
        };
        let cluster = start(2, config);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut promoted = false;
        while std::time::Instant::now() < deadline {
            for i in 0..64 {
                cluster.execute_sync("getItem", &[Value::Int(i)]).unwrap();
            }
            if cluster
                .routes()
                .iter()
                .any(|(name, route)| name == "getItem" && *route == Route::Replicated)
            {
                promoted = true;
                break;
            }
        }
        assert!(
            promoted,
            "hot type was never promoted: {:?}",
            cluster.routes()
        );
        // Updates are never promoted, whatever their rate looks like.
        assert!(cluster
            .routes()
            .iter()
            .any(|(name, route)| name == "addItem" && *route == Route::Pinned(0)));
    }

    /// The admission bound is accounted per replica: saturating one replica's
    /// queue rejects retryably without touching the others.
    #[test]
    fn queue_depth_is_per_replica() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        let cluster = ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig {
                eager_heartbeat: false,
                heartbeat: Duration::from_secs(30),
                ..EngineConfig::default()
            },
            ClusterConfig::with_replicas(2),
        )
        .unwrap();
        // Arm the heartbeat pacing of the home replica of getItem.
        cluster.execute_sync("getItem", &[Value::Int(0)]).unwrap();
        let opts = SubmitOptions {
            max_queue_depth: Some(2),
            ..SubmitOptions::default()
        };
        let mut handles = Vec::new();
        let mut rejected = 0;
        for i in 0..6 {
            match cluster.submit("getItem", &[Value::Int(i)], opts.clone()) {
                Ok(h) => handles.push(h),
                Err(Error::Overloaded(_)) => rejected += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(rejected, 4, "per-replica bound of 2 not enforced");
        // The other replica's queue is untouched: a statement pinned there
        // is admitted under the same bound.
        cluster
            .submit("allItems", &[], opts)
            .expect("other replica should admit");
        drop(handles);
    }
}

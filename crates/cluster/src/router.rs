//! Statement-type routing across engine replicas.
//!
//! Every registered statement type has a *route*:
//!
//! * **Pinned(r)** — all executions go to replica `r` (its *home*). This is
//!   the default: executions of one type land in the same engine's admission
//!   queue, so they keep forming shared batches exactly as in the
//!   single-engine system. Updates are always pinned to replica 0 (the write
//!   replica), which keeps group commit single-writer over the shared
//!   catalog.
//! * **Replicated** — the type runs on all replicas ("replicating the shared
//!   operators it activates", paper §4.5). Parameterised executions are
//!   routed by a hash of their parameter vector (hash-partitioned input
//!   routing: the same key always hits the same replica, preserving
//!   batch-locality per key range); parameterless executions round-robin or,
//!   when the statement is fanout-eligible, scatter over all replicas with
//!   partitioned scans and a merge step.
//!
//! Promotion is driven by the engines' own statistics: the router samples
//! per-type submission throughput and per-replica admission-queue depth at a
//! fixed refresh interval, promotes a type to `Replicated` when its rate
//! crosses [`ClusterConfig::hot_rate_per_s`] — or when its home replica's
//! queue is saturated and the type dominates that replica's load — and
//! demotes it (with hysteresis) when the load subsides.

use crate::ClusterConfig;
use parking_lot::Mutex;
use shareddb_common::{hash_values, Value};
use shareddb_core::StatementRegistry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Route of one statement type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// All executions go to one replica.
    Pinned(usize),
    /// Executions spread over all replicas (hot type).
    Replicated,
}

/// Encoding of [`Route`] in an atomic: `usize::MAX` = replicated.
const REPLICATED: usize = usize::MAX;

pub(crate) struct Router {
    replicas: usize,
    hot_rate_per_s: f64,
    hot_queue_depth: usize,
    refresh_interval: std::time::Duration,
    routes: Vec<AtomicUsize>,
    /// Home replica per statement (the pin target, also after demotion).
    homes: Vec<usize>,
    /// Statically-hot types ([`ClusterConfig::replicate_statements`]).
    forced: Vec<bool>,
    is_update: Vec<bool>,
    /// Submissions per type since the last refresh.
    counts: Vec<AtomicU64>,
    round_robin: AtomicUsize,
    last_refresh: Mutex<Instant>,
}

impl Router {
    pub(crate) fn new(registry: &StatementRegistry, config: &ClusterConfig) -> Router {
        let replicas = config.replicas.max(1);
        let mut routes = Vec::new();
        let mut homes = Vec::new();
        let mut forced = Vec::new();
        let mut is_update = Vec::new();
        let mut next_home = 0usize;
        for spec in registry.iter() {
            let update = spec.is_update();
            // Updates pin to the write replica; query types spread their
            // homes round-robin so cold load is balanced without breaking
            // per-type batching.
            let home = if update {
                0
            } else {
                let h = next_home % replicas;
                next_home += 1;
                h
            };
            let force = !update
                && config
                    .replicate_statements
                    .iter()
                    .any(|name| name == &spec.name);
            routes.push(AtomicUsize::new(if force { REPLICATED } else { home }));
            homes.push(home);
            forced.push(force);
            is_update.push(update);
        }
        Router {
            replicas,
            hot_rate_per_s: config.hot_rate_per_s,
            hot_queue_depth: config.hot_queue_depth.max(1),
            refresh_interval: config.refresh_interval,
            routes,
            homes,
            forced,
            is_update,
            counts: (0..registry.len()).map(|_| AtomicU64::new(0)).collect(),
            round_robin: AtomicUsize::new(0),
            last_refresh: Mutex::new(Instant::now()),
        }
    }

    /// Current route of one statement type.
    pub(crate) fn route(&self, index: usize) -> Route {
        match self.routes[index].load(Ordering::Relaxed) {
            REPLICATED => Route::Replicated,
            r => Route::Pinned(r),
        }
    }

    /// All routes, for statistics and tests.
    pub(crate) fn routes(&self) -> Vec<Route> {
        (0..self.routes.len()).map(|i| self.route(i)).collect()
    }

    /// Records one submission of `index` for the rate statistics.
    pub(crate) fn note_submit(&self, index: usize) {
        self.counts[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Picks the executing replica for one submission.
    pub(crate) fn pick_replica(&self, index: usize, params: &[Value]) -> usize {
        match self.route(index) {
            Route::Pinned(r) => r,
            Route::Replicated => {
                if params.is_empty() {
                    self.round_robin.fetch_add(1, Ordering::Relaxed) % self.replicas
                } else {
                    (hash_params(index, params) % self.replicas as u64) as usize
                }
            }
        }
    }

    /// Re-evaluates routes when the refresh interval has elapsed.
    /// `queue_depths` is only invoked when a refresh actually runs.
    pub(crate) fn maybe_refresh(&self, queue_depths: impl FnOnce() -> Vec<usize>) {
        if self.replicas <= 1 {
            return;
        }
        let Some(mut last) = self.last_refresh.try_lock() else {
            return; // another submitter is refreshing
        };
        let now = Instant::now();
        let elapsed = now.duration_since(*last);
        if elapsed < self.refresh_interval {
            return;
        }
        *last = now;
        let secs = elapsed.as_secs_f64().max(1e-9);
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.swap(0, Ordering::Relaxed))
            .collect();
        let depths = queue_depths();

        // The dominant pinned query type per saturated home replica is
        // promoted even below the absolute rate threshold: a backed-up
        // admission queue is the paper's signal that the shared operators of
        // that type saturate their engine.
        let mut dominant: Vec<Option<usize>> = vec![None; self.replicas];
        for (idx, &count) in counts.iter().enumerate() {
            if self.is_update[idx] || count == 0 {
                continue;
            }
            if let Route::Pinned(home) = self.route(idx) {
                if dominant[home].is_none_or(|best| counts[best] < count) {
                    dominant[home] = Some(idx);
                }
            }
        }

        for (idx, &count) in counts.iter().enumerate() {
            if self.is_update[idx] || self.forced[idx] {
                continue;
            }
            let rate = count as f64 / secs;
            match self.route(idx) {
                Route::Pinned(home) => {
                    let saturated = depths.get(home).copied().unwrap_or(0) >= self.hot_queue_depth
                        && dominant[home] == Some(idx);
                    if rate >= self.hot_rate_per_s || saturated {
                        self.routes[idx].store(REPLICATED, Ordering::Relaxed);
                    }
                }
                Route::Replicated => {
                    // Hysteresis: only demote once the type has clearly
                    // cooled down, so routes do not flap at the threshold.
                    if rate < self.hot_rate_per_s / 4.0 {
                        self.routes[idx].store(self.homes[idx], Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Stable hash of a parameter vector ([`shareddb_common::hash_values`],
/// seeded by the statement index so two hot types with the same keys still
/// spread differently).
fn hash_params(index: usize, params: &[Value]) -> u64 {
    hash_values(index as u64, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_hash_is_stable_and_spreads() {
        let a = hash_params(0, &[Value::Int(1)]);
        assert_eq!(a, hash_params(0, &[Value::Int(1)]));
        assert_ne!(a, hash_params(0, &[Value::Int(2)]));
        assert_ne!(a, hash_params(1, &[Value::Int(1)]));
        let hits: std::collections::HashSet<u64> = (0..64)
            .map(|i| hash_params(0, &[Value::Int(i)]) % 4)
            .collect();
        assert!(hits.len() > 1, "all parameters hashed to one replica");
    }
}

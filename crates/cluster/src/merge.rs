//! The merge step of fanned-out queries.
//!
//! The actual machinery lives in [`shareddb_core::merge`] since the engine
//! itself recombines per-segment partials with the same specs (intra-engine
//! segment parallelism); this module re-exports it so cluster-level code and
//! downstream users keep their existing paths.

pub use shareddb_core::merge::{merge_results, MergeSpec};

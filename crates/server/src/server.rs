//! The multi-threaded TCP server: client sessions feeding one shared engine.
//!
//! ## Architecture
//!
//! ```text
//!   client sockets          sessions                    engine
//!   ┌────────┐   frames   ┌──────────────┐  admit   ┌─────────────────┐
//!   │ conn 1 ├───────────▶│ reader thread├─────────▶│                 │
//!   │        │◀───────────┤ writer thread│◀─handle──┤  admission queue│
//!   └────────┘  responses └──────────────┘          │   → QueryBatch  │
//!   ┌────────┐            ┌──────────────┐          │   → shared plan │
//!   │ conn N ├───────────▶│   ...        ├─────────▶│   → Γ(query_id) │
//!   └────────┘            └──────────────┘          └─────────────────┘
//! ```
//!
//! Every connection gets a **reader** thread (parses frames, runs admission
//! control, submits statements to the engine) and a **writer** thread (waits
//! on the engine's [`QueryHandle`]s *in submission order* and streams the
//! results back). Because responses are strictly ordered, clients can
//! pipeline: many requests of one connection are in flight at once and all of
//! them land in the same heartbeat window, which is exactly how SharedDB wants
//! its work to arrive — many concurrent statements forming one big batch.
//!
//! ## Admission control
//!
//! Two limits protect the engine ([`ServerConfig`]):
//!
//! * `max_inflight_per_session` — statements a single connection may have
//!   unanswered; prevents one client from monopolising a batch.
//! * `max_queue_depth` — global bound on the engine's admission queue;
//!   requests beyond it are rejected with a *retryable*
//!   [`protocol::error_codes::OVERLOADED`] error instead of growing the queue
//!   without bound.
//!
//! On [`Server::shutdown`] the listener stops accepting, sessions drain their
//! in-flight work (bounded by `drain_timeout`), and only then is the engine
//! stopped.

use crate::protocol::{
    self, chunk_flags, error_to_wire, write_frame, Frame, WireStats, PROTOCOL_VERSION,
};
use shareddb_common::{Error, Expr, Result};
use shareddb_core::engine::QueryHandle;
use shareddb_core::plan::{
    ActivationTemplate, GlobalPlan, ProbeTemplate, StatementKind, UpdateTemplate,
};
use shareddb_core::{Engine, EngineConfig, QueryOutcome, StatementRegistry};
use shareddb_sql::compile::{bind_adhoc, canonicalize, SqlTemplate};
use shareddb_sql::compile_workload;
use shareddb_storage::Catalog;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub bind_addr: String,
    /// Name reported in the [`Frame::HelloOk`] greeting.
    pub server_name: String,
    /// Maximum unanswered statements per session before backpressure kicks in.
    pub max_inflight_per_session: usize,
    /// Engine admission-queue depth beyond which new statements are rejected.
    /// A *soft* bound: the check is made without a global lock, so concurrent
    /// sessions can overshoot it by up to one statement each — it prevents
    /// unbounded queue growth, not an exact ceiling.
    pub max_queue_depth: usize,
    /// Rows per [`Frame::ResultChunk`].
    pub chunk_rows: usize,
    /// How long [`Server::shutdown`] waits for sessions to drain.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            server_name: "shareddb".into(),
            max_inflight_per_session: 64,
            max_queue_depth: 4096,
            chunk_rows: 512,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Server-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Sessions accepted since start.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Statements submitted over the network (admitted or rejected).
    pub requests: u64,
    /// Statements rejected by admission control.
    pub rejected: u64,
}

struct Shared {
    engine: RwLock<Option<Engine>>,
    registry: StatementRegistry,
    param_counts: Vec<usize>,
    /// canonical SQL text → (statement name, template slot map); used to
    /// match ad-hoc [`Frame::Query`] SQL against the compiled statement types.
    adhoc: HashMap<String, (String, SqlTemplate)>,
    config: ServerConfig,
    shutdown: AtomicBool,
    sessions_opened: AtomicU64,
    sessions_active: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
}

/// The SharedDB network frontend: owns the engine and a TCP listener.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts a server over a pre-built global plan and statement registry
    /// (e.g. the TPC-W plan). Ad-hoc [`Frame::Query`] SQL is disabled in this
    /// mode — clients use `Prepare`/`ExecutePrepared`.
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        Server::start_inner(
            catalog,
            plan,
            registry,
            HashMap::new(),
            engine_config,
            config,
        )
    }

    /// Compiles a SQL workload (via [`shareddb_sql::compile_workload`]) into a
    /// shared global plan and starts a server over it. Ad-hoc
    /// [`Frame::Query`] SQL is matched against the workload's statement types
    /// by auto-parameterisation.
    pub fn start_sql(
        catalog: Arc<Catalog>,
        statements: &[(&str, &str)],
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        let (plan, registry) = compile_workload(&catalog, statements)?;
        let mut adhoc = HashMap::new();
        for (name, sql) in statements {
            let template = canonicalize(sql)?;
            if adhoc
                .insert(template.canonical.clone(), (name.to_string(), template))
                .is_some()
            {
                return Err(Error::ConstraintViolation(format!(
                    "statements {name} and an earlier statement share one statement type"
                )));
            }
        }
        Server::start_inner(catalog, plan, registry, adhoc, engine_config, config)
    }

    fn start_inner(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        adhoc: HashMap<String, (String, SqlTemplate)>,
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        let param_counts = registry.iter().map(spec_param_count).collect();
        let engine = Engine::start(catalog, plan, registry.clone(), engine_config)?;
        let listener = TcpListener::bind(&config.bind_addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            engine: RwLock::new(Some(engine)),
            registry,
            param_counts,
            adhoc,
            config,
            shutdown: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_sessions = Arc::clone(&sessions);
        let accept_thread = std::thread::Builder::new()
            .name("shareddb-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_sessions))
            .map_err(|e| Error::Internal(format!("failed to spawn accept thread: {e}")))?;

        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            sessions,
        })
    }

    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Engine statistics (batches, queries, latencies).
    pub fn engine_stats(&self) -> Option<shareddb_core::stats::EngineStatsSnapshot> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.stats())
    }

    /// Server-level statistics.
    pub fn stats(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            sessions_active: self.shared.sessions_active.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight sessions (bounded
    /// by [`ServerConfig::drain_timeout`]), then stop the engine.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: sessions observe the shutdown flag at their next read poll
        // and close once their pipelines are flushed.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.sessions_active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let engine = self
            .shared
            .engine
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(mut engine) = engine {
            engine.shutdown();
        }
        let handles: Vec<_> = {
            let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            sessions.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Number of positional parameters a registered statement takes, derived from
/// the `Expr::Param` references of its templates.
fn spec_param_count(spec: &shareddb_core::plan::StatementSpec) -> usize {
    fn scan(expr: &Expr, max: &mut usize) {
        expr.visit(&mut |e| {
            if let Expr::Param(i) = e {
                *max = (*max).max(*i + 1);
            }
        });
    }
    let mut max = 0;
    for (_, template) in &spec.activations {
        match template {
            ActivationTemplate::Scan { predicate } | ActivationTemplate::Filter { predicate } => {
                scan(predicate, &mut max)
            }
            ActivationTemplate::Probe {
                range, residual, ..
            } => {
                match range {
                    ProbeTemplate::Key(e) => scan(e, &mut max),
                    ProbeTemplate::Range { low, high } => {
                        if let Some((e, _)) = low {
                            scan(e, &mut max);
                        }
                        if let Some((e, _)) = high {
                            scan(e, &mut max);
                        }
                    }
                }
                if let Some(e) = residual {
                    scan(e, &mut max);
                }
            }
            ActivationTemplate::Having {
                predicate: Some(predicate),
            } => scan(predicate, &mut max),
            ActivationTemplate::Having { predicate: None }
            | ActivationTemplate::Participate
            | ActivationTemplate::TopN { .. } => {}
        }
    }
    if let StatementKind::Update { template, .. } = &spec.kind {
        match template {
            UpdateTemplate::Insert { values } => {
                for e in values {
                    scan(e, &mut max);
                }
            }
            UpdateTemplate::Update {
                assignments,
                predicate,
            } => {
                for (_, e) in assignments {
                    scan(e, &mut max);
                }
                scan(predicate, &mut max);
            }
            UpdateTemplate::Delete { predicate } => scan(predicate, &mut max),
        }
    }
    max
}

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut session_seq = 0u64;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                session_seq += 1;
                shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                shared.sessions_active.fetch_add(1, Ordering::AcqRel);
                let session_shared = Arc::clone(&shared);
                let name = format!("shareddb-session-{session_seq}");
                match std::thread::Builder::new()
                    .name(name)
                    .spawn(move || session_loop(stream, session_shared))
                {
                    Ok(handle) => {
                        let mut sessions = sessions.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished sessions so the handle list stays
                        // proportional to *live* connections under churn.
                        sessions.retain(|h| !h.is_finished());
                        sessions.push(handle);
                    }
                    Err(_) => {
                        shared.sessions_active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

enum Reply {
    /// A frame that is ready to send.
    Immediate(Frame),
    /// A submitted statement; the writer waits for the engine's result and
    /// streams it back, preserving submission order.
    Pending {
        request_id: u64,
        handle: QueryHandle,
    },
    /// Flush and close the connection.
    Close,
}

struct SessionGuard(Arc<Shared>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.sessions_active.fetch_sub(1, Ordering::AcqRel);
    }
}

fn session_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _guard = SessionGuard(Arc::clone(&shared));
    let _ = stream.set_nodelay(true);
    let read_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = read_stream.set_read_timeout(Some(Duration::from_millis(50)));

    let inflight = Arc::new(AtomicUsize::new(0));
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let writer_shared = Arc::clone(&shared);
    let writer_inflight = Arc::clone(&inflight);
    let writer = std::thread::Builder::new()
        .name("shareddb-session-writer".into())
        .spawn(move || writer_loop(stream, reply_rx, writer_shared, writer_inflight));
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };

    reader_loop(read_stream, &shared, &inflight, &reply_tx);
    let _ = reply_tx.send(Reply::Close);
    drop(reply_tx);
    let _ = writer.join();
}

/// Reads frames until EOF, error, Goodbye, or server shutdown.
fn reader_loop(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    inflight: &Arc<AtomicUsize>,
    reply_tx: &mpsc::Sender<Reply>,
) {
    let mut greeted = false;
    loop {
        let frame = match read_frame_interruptible(&mut stream, shared) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // EOF or drained shutdown
            Err(_) => return,   // malformed frame or connection error
        };
        // Hello must be the first frame: anything else before a successful
        // handshake is a protocol violation and drops the connection.
        if !greeted && !matches!(frame, Frame::Hello { .. }) {
            return;
        }
        match frame {
            Frame::Hello { version, .. } => {
                if version != PROTOCOL_VERSION {
                    // A version mismatch ends the session: continuing to
                    // decode a foreign version's frames with v1 rules would
                    // misparse them.
                    let _ = reply_tx.send(Reply::Immediate(Frame::Error {
                        request_id: 0,
                        code: protocol::error_codes::UNSUPPORTED,
                        retryable: false,
                        message: format!(
                            "protocol version {version} is not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    }));
                    return;
                }
                greeted = true;
                let reply = Frame::HelloOk {
                    version: PROTOCOL_VERSION,
                    server_name: shared.config.server_name.clone(),
                    statement_count: shared.registry.len() as u32,
                };
                if reply_tx.send(Reply::Immediate(reply)).is_err() {
                    return;
                }
            }
            Frame::Prepare { request_id, name } => {
                let reply = match shared.registry.get(&name) {
                    Ok((idx, spec)) => Frame::Prepared {
                        request_id,
                        statement_id: idx as u32,
                        param_count: shared.param_counts[idx] as u32,
                        is_update: spec.is_update(),
                    },
                    Err(e) => error_frame(request_id, &e),
                };
                if reply_tx.send(Reply::Immediate(reply)).is_err() {
                    return;
                }
            }
            Frame::ExecutePrepared {
                request_id,
                statement_id,
                params,
            } => {
                let name = if (statement_id as usize) < shared.registry.len() {
                    shared.registry.by_index(statement_id as usize).name.clone()
                } else {
                    let e = Error::UnknownStatement(format!("statement id {statement_id}"));
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    if reply_tx
                        .send(Reply::Immediate(error_frame(request_id, &e)))
                        .is_err()
                    {
                        return;
                    }
                    continue;
                };
                if !submit(shared, inflight, reply_tx, request_id, &name, &params) {
                    return;
                }
            }
            Frame::Query { request_id, sql } => {
                let resolved = canonicalize(&sql).and_then(|adhoc_template| {
                    match shared.adhoc.get(&adhoc_template.canonical) {
                        Some((name, template)) => bind_adhoc(template, &adhoc_template)
                            .map(|params| (name.clone(), params)),
                        None => Err(Error::UnknownStatement(format!(
                            "no registered statement type matches: {}",
                            adhoc_template.canonical
                        ))),
                    }
                });
                match resolved {
                    Ok((name, params)) => {
                        if !submit(shared, inflight, reply_tx, request_id, &name, &params) {
                            return;
                        }
                    }
                    Err(e) => {
                        shared.requests.fetch_add(1, Ordering::Relaxed);
                        if reply_tx
                            .send(Reply::Immediate(error_frame(request_id, &e)))
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            Frame::Stats { request_id } => {
                let engine = shared.engine.read().unwrap_or_else(|e| e.into_inner());
                let (engine_stats, queued) = match engine.as_ref() {
                    Some(e) => (e.stats(), e.queued()),
                    None => (Default::default(), 0),
                };
                drop(engine);
                let reply = Frame::StatsReply {
                    request_id,
                    stats: WireStats {
                        batches: engine_stats.batches,
                        queries: engine_stats.queries,
                        updates: engine_stats.updates,
                        failed: engine_stats.failed,
                        queued: queued as u64,
                        sessions: shared.sessions_active.load(Ordering::Relaxed),
                        rejected: shared.rejected.load(Ordering::Relaxed),
                    },
                };
                if reply_tx.send(Reply::Immediate(reply)).is_err() {
                    return;
                }
            }
            Frame::Goodbye => {
                let _ = reply_tx.send(Reply::Immediate(Frame::GoodbyeOk));
                return;
            }
            // Server-to-client frames arriving at the server are a protocol
            // violation; drop the connection.
            Frame::HelloOk { .. }
            | Frame::Prepared { .. }
            | Frame::ResultChunk { .. }
            | Frame::Error { .. }
            | Frame::StatsReply { .. }
            | Frame::GoodbyeOk => return,
        }
    }
}

/// Admission control + submission of one statement. Returns false when the
/// session must end (writer gone).
fn submit(
    shared: &Arc<Shared>,
    inflight: &Arc<AtomicUsize>,
    reply_tx: &mpsc::Sender<Reply>,
    request_id: u64,
    statement: &str,
    params: &[shareddb_common::Value],
) -> bool {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if shared.shutdown.load(Ordering::Acquire) {
        return reply_tx
            .send(Reply::Immediate(error_frame(
                request_id,
                &Error::EngineShutdown,
            )))
            .is_ok();
    }
    // Per-session in-flight cap.
    if inflight.load(Ordering::Acquire) >= shared.config.max_inflight_per_session {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let e = Error::Overloaded(format!(
            "session in-flight limit of {} reached",
            shared.config.max_inflight_per_session
        ));
        return reply_tx
            .send(Reply::Immediate(error_frame(request_id, &e)))
            .is_ok();
    }
    let engine = shared.engine.read().unwrap_or_else(|e| e.into_inner());
    let engine = match engine.as_ref() {
        Some(e) => e,
        None => {
            return reply_tx
                .send(Reply::Immediate(error_frame(
                    request_id,
                    &Error::EngineShutdown,
                )))
                .is_ok();
        }
    };
    // Global queue-depth backpressure.
    if engine.queued() >= shared.config.max_queue_depth {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let e = Error::Overloaded(format!(
            "admission queue depth limit of {} reached",
            shared.config.max_queue_depth
        ));
        return reply_tx
            .send(Reply::Immediate(error_frame(request_id, &e)))
            .is_ok();
    }
    match engine.execute(statement, params) {
        Ok(handle) => {
            inflight.fetch_add(1, Ordering::AcqRel);
            reply_tx.send(Reply::Pending { request_id, handle }).is_ok()
        }
        Err(e) => reply_tx
            .send(Reply::Immediate(error_frame(request_id, &e)))
            .is_ok(),
    }
}

fn error_frame(request_id: u64, error: &Error) -> Frame {
    let (code, retryable) = error_to_wire(error);
    Frame::Error {
        request_id,
        code,
        retryable,
        message: error.to_string(),
    }
}

/// Streams replies back to the client in submission order.
fn writer_loop(
    stream: TcpStream,
    reply_rx: mpsc::Receiver<Reply>,
    shared: Arc<Shared>,
    inflight: Arc<AtomicUsize>,
) {
    let mut writer = std::io::BufWriter::new(stream);
    while let Ok(reply) = reply_rx.recv() {
        let ok = match reply {
            Reply::Immediate(frame) => {
                write_frame(&mut writer, &frame).is_ok() && writer.flush().is_ok()
            }
            Reply::Pending { request_id, handle } => {
                let outcome = handle.wait();
                inflight.fetch_sub(1, Ordering::AcqRel);
                let ok = match outcome {
                    Ok(outcome) => write_outcome(&mut writer, request_id, &outcome, &shared),
                    Err(e) => write_frame(&mut writer, &error_frame(request_id, &e)).is_ok(),
                };
                ok && writer.flush().is_ok()
            }
            Reply::Close => break,
        };
        if !ok {
            break;
        }
    }
    let _ = writer.flush();
    if let Ok(stream) = writer.into_inner() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

fn write_outcome(
    writer: &mut impl std::io::Write,
    request_id: u64,
    outcome: &QueryOutcome,
    shared: &Arc<Shared>,
) -> bool {
    match outcome {
        QueryOutcome::Updated { rows_affected } => write_frame(
            writer,
            &Frame::ResultChunk {
                request_id,
                flags: chunk_flags::FIRST | chunk_flags::LAST | chunk_flags::UPDATE,
                rows_affected: *rows_affected as u64,
                schema: vec![],
                rows: vec![],
            },
        )
        .is_ok(),
        QueryOutcome::Rows(result) => {
            let schema: Vec<(String, shareddb_common::DataType)> = result
                .schema
                .columns()
                .iter()
                .map(|c| (c.qualified_name(), c.data_type))
                .collect();
            let chunk_rows = shared.config.chunk_rows.max(1);
            let n_chunks = result.rows.len().div_ceil(chunk_rows).max(1);
            for (i, chunk) in result
                .rows
                .chunks(chunk_rows)
                .chain(std::iter::repeat_n(
                    &[][..],
                    usize::from(result.rows.is_empty()),
                ))
                .enumerate()
            {
                let mut flags = 0u8;
                if i == 0 {
                    flags |= chunk_flags::FIRST;
                }
                if i + 1 == n_chunks {
                    flags |= chunk_flags::LAST;
                }
                let frame = Frame::ResultChunk {
                    request_id,
                    flags,
                    rows_affected: 0,
                    schema: if i == 0 { schema.clone() } else { vec![] },
                    rows: chunk.iter().map(|t| t.values().to_vec()).collect(),
                };
                if write_frame(writer, &frame).is_err() {
                    return false;
                }
            }
            true
        }
    }
}

/// A client that started a frame but stalls for this long is dropped — it
/// would otherwise pin its session thread (and block shutdown) forever.
const STALLED_FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// Reads one frame, waking every 50 ms to observe the shutdown flag. Returns
/// `Ok(None)` on clean EOF or when the server drains before a new frame
/// starts. A half-read frame errors out on shutdown or after
/// [`STALLED_FRAME_TIMEOUT`] of stalling, so a silent client can never pin
/// its session thread.
fn read_frame_interruptible(stream: &mut TcpStream, shared: &Arc<Shared>) -> Result<Option<Frame>> {
    use std::io::Read;
    let mut frame_started: Option<Instant> = None;
    // Handles a would-block wakeup; `Err` means the connection must be
    // dropped (shutdown or a stalled mid-frame client).
    let on_idle = |frame_started: &Option<Instant>| -> Result<()> {
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(Error::EngineShutdown);
        }
        if let Some(started) = frame_started {
            if started.elapsed() > STALLED_FRAME_TIMEOUT {
                return Err(Error::Io("client stalled mid-frame".into()));
            }
        }
        Ok(())
    };
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(Error::Io("eof inside length prefix".into()))
                };
            }
            Ok(n) => {
                filled += n;
                frame_started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if frame_started.is_none() && shared.shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
                on_idle(&frame_started)?;
            }
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > protocol::MAX_FRAME_LEN {
        return Err(Error::Io(format!("bad frame length {len}")));
    }
    let mut body = vec![0u8; len];
    let mut read = 0usize;
    while read < len {
        match stream.read(&mut body[read..]) {
            Ok(0) => return Err(Error::Io("eof inside frame body".into())),
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                on_idle(&frame_started)?;
            }
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    Frame::decode(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;
    use shareddb_common::{tuple, DataType, Value};
    use shareddb_storage::TableDef;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_TITLE", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..100i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    fn workload() -> Vec<(&'static str, &'static str)> {
        vec![
            ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
            ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
        ]
    }

    /// Raw-socket smoke test of the whole session loop (the full client
    /// library has its own loopback integration tests).
    #[test]
    fn raw_session_round_trip() {
        let mut server = Server::start_sql(
            catalog(),
            &workload(),
            EngineConfig::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                client_name: "raw".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::HelloOk {
                statement_count, ..
            } => assert_eq!(statement_count, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Prepare + execute.
        write_frame(
            &mut stream,
            &Frame::Prepare {
                request_id: 1,
                name: "getItem".into(),
            },
        )
        .unwrap();
        let (statement_id, param_count) = match read_frame(&mut stream).unwrap().unwrap() {
            Frame::Prepared {
                request_id,
                statement_id,
                param_count,
                is_update,
            } => {
                assert_eq!(request_id, 1);
                assert!(!is_update);
                (statement_id, param_count)
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(param_count, 1);
        write_frame(
            &mut stream,
            &Frame::ExecutePrepared {
                request_id: 2,
                statement_id,
                params: vec![Value::Int(42)],
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::ResultChunk {
                request_id,
                flags,
                rows,
                schema,
                ..
            } => {
                assert_eq!(request_id, 2);
                assert_eq!(flags, chunk_flags::FIRST | chunk_flags::LAST);
                assert_eq!(schema.len(), 3);
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0][0], Value::Int(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Ad-hoc SQL matches the registered statement type.
        write_frame(
            &mut stream,
            &Frame::Query {
                request_id: 3,
                sql: "select * from item where i_id = 7".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::ResultChunk { rows, .. } => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0][0], Value::Int(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown statement type.
        write_frame(
            &mut stream,
            &Frame::Query {
                request_id: 4,
                sql: "SELECT * FROM ITEM WHERE I_TITLE = 'x'".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => {
                assert_eq!(code, protocol::error_codes::UNKNOWN_STATEMENT)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Stats + goodbye.
        write_frame(&mut stream, &Frame::Stats { request_id: 5 }).unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::StatsReply { stats, .. } => {
                assert_eq!(stats.queries, 2);
                assert_eq!(stats.sessions, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        write_frame(&mut stream, &Frame::Goodbye).unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::GoodbyeOk => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_active, 0);
    }

    #[test]
    fn param_counts_cover_all_template_kinds() {
        let catalog = catalog();
        let (_, registry) = compile_workload(&catalog, &workload()).unwrap();
        let counts: Vec<usize> = registry.iter().map(spec_param_count).collect();
        assert_eq!(counts, vec![1, 3]);
    }
}

//! The event-driven TCP server: one reactor thread feeding one shared engine.
//!
//! ## Architecture
//!
//! ```text
//!   client sockets      reactor (1 thread)                engine
//!   ┌────────┐  bytes  ┌───────────────────┐  admit   ┌─────────────────┐
//!   │ conn 1 ├────────▶│ epoll / poll loop │─────────▶│                 │
//!   │        │◀────────┤ frame decoders    │◀─waker───┤  admission queue│
//!   └────────┘  frames │ reply queues      │          │   → QueryBatch  │
//!   ┌────────┐         │ write queues      │          │   → shared plan │
//!   │ conn N ├────────▶│                   │─────────▶│   → Γ(query_id) │
//!   └────────┘         └───────────────────┘          └─────────────────┘
//! ```
//!
//! A single [`crate::reactor::Reactor`] thread owns the listener and every
//! client socket (nonblocking, readiness-driven — `epoll` on Linux through a
//! direct libc binding, an adaptive-parking poll loop elsewhere). Incoming
//! bytes accumulate in per-connection [`crate::protocol::FrameDecoder`]s;
//! complete frames run admission control and are submitted to the engine;
//! results are pumped back *in submission order* through per-connection reply
//! queues when the engine's completion waker fires. Because responses are
//! strictly ordered, clients can pipeline: many requests of one connection
//! are in flight at once and all of them land in the same heartbeat window,
//! which is exactly how SharedDB wants its work to arrive — many concurrent
//! statements forming one big batch.
//!
//! Compared to the former thread-per-connection frontend this removes two OS
//! threads per session (the server now scales to thousands of sockets) and
//! the 50 ms shutdown poll every session used to run: an idle server makes no
//! wakeups at all.
//!
//! ## Admission control
//!
//! Two limits protect the engine ([`ServerConfig`]):
//!
//! * `max_inflight_per_session` — statements a single connection may have
//!   unanswered; prevents one client from monopolising a batch.
//! * `max_queue_depth` — global bound on the engine's admission queue,
//!   enforced **atomically** under the queue lock
//!   ([`shareddb_core::SubmitOptions::max_queue_depth`]); requests beyond it
//!   are rejected with a *retryable*
//!   [`crate::protocol::error_codes::OVERLOADED`] error instead of growing the queue
//!   without bound.
//!
//! On [`Server::shutdown`] the listener stops accepting, sessions drain their
//! in-flight work (bounded by `drain_timeout`, signalled event-driven by the
//! reactor rather than polled), and only then is the engine stopped.

use crate::backend::ClusterBackend;
use crate::reactor::{Poller, Reactor, ScanPoller};
use shareddb_cluster::ClusterConfig;
use shareddb_common::metrics::{escape_label_value, render_summary};
use shareddb_common::{Error, Expr, Result};
use shareddb_core::plan::{
    ActivationTemplate, GlobalPlan, ProbeTemplate, StatementKind, UpdateTemplate,
};
use shareddb_core::stats::{PhaseTable, StatementPhaseSnapshot};
use shareddb_core::{EngineConfig, Phase, SlowQueryRecord, StatementRegistry};
use shareddb_sql::compile::{canonicalize, SqlTemplate};
use shareddb_sql::compile_workload;
use shareddb_storage::{Catalog, RecoveryReport, SyncPolicy};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub bind_addr: String,
    /// Name reported in the [`crate::protocol::Frame::HelloOk`] greeting.
    pub server_name: String,
    /// Maximum unanswered statements per session before backpressure kicks in.
    pub max_inflight_per_session: usize,
    /// Engine admission-queue depth beyond which new statements are rejected.
    /// A *hard* bound: the check and the enqueue happen under the engine's
    /// queue lock, so concurrent sessions can never overshoot it.
    pub max_queue_depth: usize,
    /// Rows per [`crate::protocol::Frame::ResultChunk`].
    pub chunk_rows: usize,
    /// How long [`Server::shutdown`] waits for sessions to drain.
    pub drain_timeout: Duration,
    /// Use the portable adaptive-parking poller even where an OS readiness
    /// facility (Linux `epoll`) is available. Mainly for tests and for
    /// diagnosing platform-specific reactor issues.
    pub force_portable_poller: bool,
    /// Engine-cluster configuration: `cluster.replicas` engines serve this
    /// one wire endpoint (1 = the classic single-engine frontend). See
    /// [`shareddb_cluster::ClusterConfig`] for the hot-type thresholds.
    pub cluster: ClusterConfig,
    /// Durability directory. `Some(dir)` makes the server crash-consistent:
    /// on startup it recovers the catalog from `dir` (checkpoint + committed
    /// WAL tail, truncating any torn record), compacts the log while still
    /// quiescent — which also captures bulk-loaded seed data the WAL never
    /// saw — and then appends every committed batch to `dir/wal.log`.
    /// `None` (the default) keeps the engine fully in-memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// When to fsync the WAL (only meaningful with `data_dir`). See
    /// [`shareddb_storage::SyncPolicy`]: `Always` makes every acked update
    /// survive `kill -9` *and* power loss; `EveryBatch` (default) survives
    /// process crashes; `Interval` bounds power-loss exposure by time.
    pub wal_sync: SyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            server_name: "shareddb".into(),
            max_inflight_per_session: 64,
            max_queue_depth: 4096,
            chunk_rows: 512,
            drain_timeout: Duration::from_secs(5),
            force_portable_poller: false,
            cluster: ClusterConfig::default(),
            data_dir: None,
            wal_sync: SyncPolicy::EveryBatch,
        }
    }
}

/// Server-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Sessions accepted since start.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Statements submitted over the network (admitted or rejected).
    pub requests: u64,
    /// Statements rejected by admission control.
    pub rejected: u64,
}

pub(crate) struct Shared {
    pub(crate) engine: RwLock<Option<ClusterBackend>>,
    pub(crate) registry: StatementRegistry,
    pub(crate) param_counts: Vec<usize>,
    /// canonical SQL text → (statement name, template slot map); used to
    /// match ad-hoc [`crate::protocol::Frame::Query`] SQL against the compiled
    /// statement types.
    pub(crate) adhoc: HashMap<String, (String, SqlTemplate)>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_active: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) rejected: AtomicU64,
    /// Per-statement Flush-phase histograms (reply ready → bytes handed to
    /// the socket), recorded by the reactor's write path.
    pub(crate) flush_phases: PhaseTable,
    /// Plain-HTTP `/metrics` requests served by the reactor.
    pub(crate) scrapes: AtomicU64,
    /// Malformed or unroutable HTTP requests answered with 4xx.
    pub(crate) http_errors: AtomicU64,
    /// What startup recovery replayed (`None` when running in-memory).
    pub(crate) recovery: Option<RecoveryReport>,
    /// Event-driven drain signal: the reactor flips the flag and notifies
    /// once every session has flushed and closed (no timed polling).
    drained: Mutex<bool>,
    drained_cv: Condvar,
}

impl Shared {
    pub(crate) fn notify_drained(&self) {
        let mut drained = self.drained.lock().unwrap_or_else(|e| e.into_inner());
        *drained = true;
        self.drained_cv.notify_all();
    }

    fn wait_drained(&self, timeout: Duration) {
        let drained = self.drained.lock().unwrap_or_else(|e| e.into_inner());
        let _ = self
            .drained_cv
            .wait_timeout_while(drained, timeout, |d| !*d);
    }

    /// Renders the full Prometheus text exposition: server counters, engine
    /// counters per replica, per-statement per-phase latency summaries,
    /// operator utilisation, and the cluster-level scatter/merge phases.
    pub(crate) fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let w = &mut out;
        let _ = writeln!(w, "# TYPE shareddb_sessions_opened counter");
        let _ = writeln!(
            w,
            "shareddb_sessions_opened {}",
            self.sessions_opened.load(Ordering::Relaxed)
        );
        let _ = writeln!(w, "# TYPE shareddb_sessions_active gauge");
        let _ = writeln!(
            w,
            "shareddb_sessions_active {}",
            self.sessions_active.load(Ordering::Relaxed)
        );
        let _ = writeln!(w, "# TYPE shareddb_requests counter");
        let _ = writeln!(
            w,
            "shareddb_requests {}",
            self.requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(w, "# TYPE shareddb_rejected counter");
        let _ = writeln!(
            w,
            "shareddb_rejected {}",
            self.rejected.load(Ordering::Relaxed)
        );
        let _ = writeln!(w, "# TYPE shareddb_metrics_scrapes counter");
        let _ = writeln!(
            w,
            "shareddb_metrics_scrapes {}",
            self.scrapes.load(Ordering::Relaxed)
        );

        let engine = self.engine.read().unwrap_or_else(|e| e.into_inner());
        let backend = match engine.as_ref() {
            Some(b) => b,
            None => return out,
        };
        // Engine counters, aggregated and per replica.
        let total = backend.stats();
        let _ = writeln!(w, "# TYPE shareddb_engine_batches counter");
        let _ = writeln!(w, "shareddb_engine_batches {}", total.batches);
        let _ = writeln!(w, "# TYPE shareddb_engine_queries counter");
        let _ = writeln!(w, "shareddb_engine_queries {}", total.queries);
        let _ = writeln!(w, "# TYPE shareddb_engine_updates counter");
        let _ = writeln!(w, "shareddb_engine_updates {}", total.updates);
        let _ = writeln!(w, "# TYPE shareddb_engine_failed counter");
        let _ = writeln!(w, "shareddb_engine_failed {}", total.failed);
        let _ = writeln!(w, "# TYPE shareddb_engine_queued gauge");
        let _ = writeln!(w, "shareddb_engine_queued {}", backend.queued());
        let (slow_total, _) = backend.slow_queries();
        let _ = writeln!(w, "# TYPE shareddb_slow_queries counter");
        let _ = writeln!(w, "shareddb_slow_queries {slow_total}");

        // Write-ahead-log durability series: how many bytes and group
        // commits the log absorbed, how often and how slowly it fsynced,
        // and the commit-batch size distribution.
        let wal = backend.catalog().wal().stats_snapshot();
        let _ = writeln!(w, "# TYPE shareddb_wal_appended_bytes counter");
        let _ = writeln!(w, "shareddb_wal_appended_bytes {}", wal.appended_bytes);
        let _ = writeln!(w, "# TYPE shareddb_wal_batches counter");
        let _ = writeln!(w, "shareddb_wal_batches {}", wal.batches);
        let _ = writeln!(w, "# TYPE shareddb_wal_syncs counter");
        let _ = writeln!(w, "shareddb_wal_syncs {}", wal.syncs);
        let _ = writeln!(w, "# TYPE shareddb_wal_last_lsn gauge");
        let _ = writeln!(w, "shareddb_wal_last_lsn {}", wal.last_lsn);
        if !wal.fsync_us.is_empty() {
            let _ = writeln!(w, "# TYPE shareddb_wal_fsync_us summary");
            render_summary(w, "shareddb_wal_fsync_us", &wal.fsync_us);
        }
        if !wal.group_commit_size.is_empty() {
            let _ = writeln!(w, "# TYPE shareddb_wal_group_commit_size summary");
            render_summary(w, "shareddb_wal_group_commit_size", &wal.group_commit_size);
        }
        if let Some(recovery) = &self.recovery {
            let _ = writeln!(w, "# TYPE shareddb_recovery_checkpoint_rows gauge");
            let _ = writeln!(
                w,
                "shareddb_recovery_checkpoint_rows {}",
                recovery.checkpoint_rows
            );
            let _ = writeln!(w, "# TYPE shareddb_recovery_replayed_batches gauge");
            let _ = writeln!(
                w,
                "shareddb_recovery_replayed_batches {}",
                recovery.replayed_batches
            );
            let _ = writeln!(w, "# TYPE shareddb_recovery_torn_tail gauge");
            let _ = writeln!(
                w,
                "shareddb_recovery_torn_tail {}",
                u8::from(recovery.torn_tail.is_some())
            );
        }

        let replica_stats = backend.replica_stats();
        let _ = writeln!(w, "# TYPE shareddb_replica_queries counter");
        for (i, stats) in replica_stats.iter().enumerate() {
            let _ = writeln!(
                w,
                "shareddb_replica_queries{{replica=\"{i}\"}} {}",
                stats.queries
            );
        }

        // Adaptive heartbeat + priority admission: the interval each
        // replica's coordinator is currently running (constant under a fixed
        // policy), how often its controller moved it, and the depth of the
        // two admission lanes.
        let _ = writeln!(w, "# TYPE shareddb_heartbeat_interval_us gauge");
        for (i, interval) in backend.replica_heartbeats().iter().enumerate() {
            let _ = writeln!(
                w,
                "shareddb_heartbeat_interval_us{{replica=\"{i}\"}} {}",
                interval.as_micros()
            );
        }
        let _ = writeln!(w, "# TYPE shareddb_heartbeat_adjustments counter");
        for (i, adjustments) in backend.replica_heartbeat_adjustments().iter().enumerate() {
            let _ = writeln!(
                w,
                "shareddb_heartbeat_adjustments{{replica=\"{i}\"}} {adjustments}"
            );
        }
        let _ = writeln!(w, "# TYPE shareddb_admission_lane_depth gauge");
        for (i, (light, heavy)) in backend.lane_depths_per_replica().iter().enumerate() {
            let _ = writeln!(
                w,
                "shareddb_admission_lane_depth{{replica=\"{i}\",lane=\"light\"}} {light}"
            );
            let _ = writeln!(
                w,
                "shareddb_admission_lane_depth{{replica=\"{i}\",lane=\"heavy\"}} {heavy}"
            );
        }

        // Batch occupancy: how many statements each heartbeat batch carried
        // (the sharing opportunity the batcher actually realised).
        let _ = writeln!(w, "# TYPE shareddb_batch_occupancy summary");
        for (i, stats) in replica_stats.iter().enumerate() {
            if !stats.occupancy.is_empty() {
                render_summary(
                    w,
                    &format!("shareddb_batch_occupancy{{replica=\"{i}\"}}"),
                    &stats.occupancy,
                );
            }
        }

        // Phase-tagged latency summaries: per replica, then the cluster-level
        // scatter/merge phases and the reactor's flush phase.
        let _ = writeln!(w, "# TYPE shareddb_phase_latency_us summary");
        for (i, statements) in backend.replica_phase_stats().iter().enumerate() {
            render_phase_block(w, statements, &format!("replica=\"{i}\""));
        }
        render_phase_block(w, &backend.cluster_phase_stats(), "replica=\"cluster\"");
        render_phase_block(w, &self.flush_phases.snapshot(), "replica=\"frontend\"");

        // Static sharing factor per operator: how many statement types'
        // subtrees or activation lists touch it in the global plan.
        let plan = backend.plan();
        let sets = shareddb_core::sharing_sets(plan, backend.registry());
        let _ = writeln!(w, "# TYPE shareddb_operator_sharing_factor gauge");
        for node in plan.nodes() {
            let _ = writeln!(
                w,
                "shareddb_operator_sharing_factor{{operator=\"{}\"}} {}",
                escape_label_value(&node.name),
                sets.get(node.id).map_or(0, Vec::len)
            );
        }

        // Operator utilisation (busy fraction of the stats window) and total
        // busy time — the latter is the attribution denominator: the
        // attributed series below sums to it per operator, `_idle` included.
        let operator_stats = backend.replica_operator_stats();
        let _ = writeln!(w, "# TYPE shareddb_operator_busy_fraction gauge");
        for (i, (wall, ops)) in operator_stats.iter().enumerate() {
            for op in ops {
                let _ = writeln!(
                    w,
                    "shareddb_operator_busy_fraction{{replica=\"{i}\",operator=\"{}\"}} {:.6}",
                    escape_label_value(&op.name),
                    op.busy_fraction(*wall)
                );
            }
        }
        let _ = writeln!(w, "# TYPE shareddb_operator_busy_us counter");
        for (i, (_, ops)) in operator_stats.iter().enumerate() {
            for op in ops {
                let _ = writeln!(
                    w,
                    "shareddb_operator_busy_us{{replica=\"{i}\",operator=\"{}\"}} {}",
                    escape_label_value(&op.name),
                    op.busy.as_micros()
                );
            }
        }

        // Per-operator × per-statement-type cost attribution: each
        // operator's busy time split by the activation mix of its batches
        // (`stmt_type="_idle"` covers cycles with no activation of that
        // operator).
        let _ = writeln!(w, "# TYPE shareddb_attributed_busy_us counter");
        let _ = writeln!(w, "# TYPE shareddb_attributed_rows counter");
        for (i, entries) in backend.replica_attribution_stats().iter().enumerate() {
            for entry in entries {
                let labels = format!(
                    "replica=\"{i}\",operator=\"{}\",stmt_type=\"{}\"",
                    escape_label_value(&entry.operator),
                    escape_label_value(&entry.statement)
                );
                let _ = writeln!(
                    w,
                    "shareddb_attributed_busy_us{{{labels}}} {}",
                    entry.busy.as_micros()
                );
                let _ = writeln!(w, "shareddb_attributed_rows{{{labels}}} {}", entry.rows);
            }
        }

        // Intra-engine segment parallelism: per-segment utilisation, batch
        // and row counters, and per-batch execute latency. Absent entirely
        // when replicas run with `scan_segments == 1`.
        let segment_stats = backend.replica_segment_stats();
        if segment_stats.iter().any(|(_, segs)| !segs.is_empty()) {
            let _ = writeln!(w, "# TYPE shareddb_segment_busy_fraction gauge");
            let _ = writeln!(w, "# TYPE shareddb_segment_batches counter");
            let _ = writeln!(w, "# TYPE shareddb_segment_rows counter");
            for (i, (wall, segs)) in segment_stats.iter().enumerate() {
                for seg in segs {
                    let labels = format!("replica=\"{i}\",segment=\"{}\"", seg.segment);
                    let _ = writeln!(
                        w,
                        "shareddb_segment_busy_fraction{{{labels}}} {:.6}",
                        seg.busy_fraction(*wall)
                    );
                    let _ = writeln!(w, "shareddb_segment_batches{{{labels}}} {}", seg.batches);
                    let _ = writeln!(w, "shareddb_segment_rows{{{labels}}} {}", seg.rows);
                }
            }
            let _ = writeln!(w, "# TYPE shareddb_segment_execute_us summary");
            for (i, (_, segs)) in segment_stats.iter().enumerate() {
                for seg in segs {
                    let name = format!(
                        "shareddb_segment_execute_us{{replica=\"{i}\",segment=\"{}\"}}",
                        seg.segment
                    );
                    render_summary(w, &name, &seg.execute);
                }
            }
        }
        out
    }
}

/// Renders one set of per-statement phase snapshots under
/// `shareddb_phase_latency_us` with `statement`/`phase` labels plus the
/// caller's extra label (replica id, `cluster`, or `frontend`).
fn render_phase_block(out: &mut String, statements: &[StatementPhaseSnapshot], extra: &str) {
    for snap in statements {
        for phase in Phase::ALL {
            let histogram = snap.phase(phase);
            if histogram.is_empty() {
                continue;
            }
            let name = format!(
                "shareddb_phase_latency_us{{{extra},statement=\"{}\",phase=\"{}\"}}",
                escape_label_value(&snap.statement),
                phase.name()
            );
            render_summary(out, &name, histogram);
        }
    }
}

/// The SharedDB network frontend: owns the engine and a TCP listener.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
    reactor_waker: Arc<dyn Fn() + Send + Sync>,
}

impl Server {
    /// Starts a server over a pre-built global plan and statement registry
    /// (e.g. the TPC-W plan). Ad-hoc [`crate::protocol::Frame::Query`] SQL is
    /// disabled in this mode — clients use `Prepare`/`ExecutePrepared`.
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        Server::start_inner(
            catalog,
            plan,
            registry,
            HashMap::new(),
            engine_config,
            config,
        )
    }

    /// Compiles a SQL workload (via [`shareddb_sql::compile_workload`]) into a
    /// shared global plan and starts a server over it. Ad-hoc
    /// [`crate::protocol::Frame::Query`] SQL is matched against the workload's
    /// statement types by auto-parameterisation.
    pub fn start_sql(
        catalog: Arc<Catalog>,
        statements: &[(&str, &str)],
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        let (plan, registry) = compile_workload(&catalog, statements)?;
        let mut adhoc = HashMap::new();
        for (name, sql) in statements {
            let template = canonicalize(sql)?;
            if adhoc
                .insert(template.canonical.clone(), (name.to_string(), template))
                .is_some()
            {
                return Err(Error::ConstraintViolation(format!(
                    "statements {name} and an earlier statement share one statement type"
                )));
            }
        }
        Server::start_inner(catalog, plan, registry, adhoc, engine_config, config)
    }

    fn start_inner(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        adhoc: HashMap<String, (String, SqlTemplate)>,
        engine_config: EngineConfig,
        config: ServerConfig,
    ) -> Result<Server> {
        let param_counts = registry.iter().map(spec_param_count).collect();
        let statement_names: Vec<String> = registry.iter().map(|s| s.name.clone()).collect();
        // Durable mode: recover disk state and attach the WAL while still
        // quiescent (no engine heartbeats yet), then compact so the next
        // recovery starts from a checkpoint covering everything live now —
        // including bulk-loaded seed rows, which the WAL never records.
        let recovery = match &config.data_dir {
            Some(dir) => {
                catalog.wal().set_sync_policy(config.wal_sync);
                let report = catalog.recover(dir)?;
                catalog.compact(dir)?;
                Some(report)
            }
            None => None,
        };
        let engine = ClusterBackend::start(
            catalog,
            plan,
            registry.clone(),
            engine_config,
            config.cluster.clone(),
        )?;
        let listener = TcpListener::bind(&config.bind_addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = build_poller(config.force_portable_poller);

        let shared = Arc::new(Shared {
            engine: RwLock::new(Some(engine)),
            registry,
            param_counts,
            adhoc,
            config,
            shutdown: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            flush_phases: PhaseTable::new(statement_names),
            scrapes: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            recovery,
            drained: Mutex::new(false),
            drained_cv: Condvar::new(),
        });

        let reactor_waker = poller.waker();
        let reactor = Reactor::new(Arc::clone(&shared), listener, poller);
        let reactor_thread = std::thread::Builder::new()
            .name("shareddb-reactor".into())
            .spawn(move || reactor.run())
            .map_err(|e| Error::Internal(format!("failed to spawn reactor thread: {e}")))?;

        Ok(Server {
            shared,
            addr,
            reactor_thread: Some(reactor_thread),
            reactor_waker,
        })
    }

    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Engine statistics (batches, queries, latencies), aggregated over all
    /// replicas.
    pub fn engine_stats(&self) -> Option<shareddb_core::stats::EngineStatsSnapshot> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.stats())
    }

    /// Per-replica engine statistics, in replica order.
    pub fn replica_stats(&self) -> Option<Vec<shareddb_core::stats::EngineStatsSnapshot>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.replica_stats())
    }

    /// Current route of every statement type (cold types pinned, hot types
    /// replicated).
    pub fn routes(&self) -> Option<Vec<(String, shareddb_cluster::Route)>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.routes())
    }

    /// Statements admitted to the engine but not yet formed into a batch.
    pub fn queued(&self) -> usize {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.queued())
            .unwrap_or(0)
    }

    /// Per-replica, per-statement phase-tagged latency histograms.
    pub fn replica_phase_stats(&self) -> Option<Vec<Vec<StatementPhaseSnapshot>>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.replica_phase_stats())
    }

    /// Per-replica scan-segment statistics with each replica's stats-window
    /// wall clock (inner vectors empty when `scan_segments == 1`).
    pub fn replica_segment_stats(
        &self,
    ) -> Option<
        Vec<(
            std::time::Duration,
            Vec<shareddb_core::SegmentStatsSnapshot>,
        )>,
    > {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.replica_segment_stats())
    }

    /// Cluster-level scatter/merge phase histograms.
    pub fn cluster_phase_stats(&self) -> Option<Vec<StatementPhaseSnapshot>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.cluster_phase_stats())
    }

    /// Per-statement Flush-phase histograms recorded by the reactor's write
    /// path (reply ready → bytes handed to the socket).
    pub fn flush_phase_stats(&self) -> Vec<StatementPhaseSnapshot> {
        self.shared.flush_phases.snapshot()
    }

    /// Slow-query count and retained offender records, summed over replicas.
    pub fn slow_queries(&self) -> Option<(u64, Vec<SlowQueryRecord>)> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.slow_queries())
    }

    /// Cluster-wide per-operator × per-statement-type cost attribution,
    /// merged over replicas by `(operator, statement)` key.
    pub fn attribution_stats(&self) -> Option<Vec<shareddb_core::AttributionEntry>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.attribution_stats())
    }

    /// Per-replica cost-attribution snapshots, in replica order.
    pub fn replica_attribution_stats(&self) -> Option<Vec<Vec<shareddb_core::AttributionEntry>>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.replica_attribution_stats())
    }

    /// One replica's batch-lifecycle trace journal, oldest first.
    pub fn replica_trace(&self, replica: usize) -> Option<Vec<shareddb_core::TraceRecord>> {
        self.shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|e| e.replica_trace(replica))
    }

    /// What startup recovery restored and replayed, when the server runs
    /// with [`ServerConfig::data_dir`]; `None` in-memory.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.shared.recovery.as_ref()
    }

    /// The Prometheus text exposition also served over HTTP at `/metrics`.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Zeroes engine, cluster and frontend-flush statistics. Bench harnesses
    /// call this after warm-up so sweep points measure only their own window.
    pub fn reset_stats(&self) {
        if let Some(backend) = self
            .shared
            .engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            backend.reset_stats();
        }
        self.shared.flush_phases.reset();
    }

    /// Server-level statistics.
    pub fn stats(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            sessions_active: self.shared.sessions_active.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight sessions (bounded
    /// by [`ServerConfig::drain_timeout`]), then stop the engine.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the reactor so it observes the flag immediately (event-driven;
        // no session ever polls a shutdown flag on a timer any more).
        (self.reactor_waker)();
        // Drain: the reactor signals once every session has flushed its
        // in-flight work and closed.
        self.shared.wait_drained(self.shared.config.drain_timeout);
        // Stop the engine: completes everything still queued (final batch) or
        // fails it with a clean shutdown error; completion wakers hand those
        // results to the reactor, which delivers them and closes the
        // remaining sessions.
        let engine = self
            .shared
            .engine
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(mut engine) = engine {
            engine.shutdown();
        }
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn build_poller(force_portable: bool) -> Box<dyn Poller> {
    #[cfg(target_os = "linux")]
    {
        if !force_portable {
            if let Ok(poller) = crate::reactor::EpollPoller::new() {
                return Box::new(poller);
            }
        }
    }
    let _ = force_portable;
    Box::new(ScanPoller::new())
}

/// Number of positional parameters a registered statement takes, derived from
/// the `Expr::Param` references of its templates.
fn spec_param_count(spec: &shareddb_core::plan::StatementSpec) -> usize {
    fn scan(expr: &Expr, max: &mut usize) {
        expr.visit(&mut |e| {
            if let Expr::Param(i) = e {
                *max = (*max).max(*i + 1);
            }
        });
    }
    let mut max = 0;
    for (_, template) in &spec.activations {
        match template {
            ActivationTemplate::Scan { predicate } | ActivationTemplate::Filter { predicate } => {
                scan(predicate, &mut max)
            }
            ActivationTemplate::Probe {
                range, residual, ..
            } => {
                match range {
                    ProbeTemplate::Key(e) => scan(e, &mut max),
                    ProbeTemplate::Range { low, high } => {
                        if let Some((e, _)) = low {
                            scan(e, &mut max);
                        }
                        if let Some((e, _)) = high {
                            scan(e, &mut max);
                        }
                    }
                }
                if let Some(e) = residual {
                    scan(e, &mut max);
                }
            }
            ActivationTemplate::Having {
                predicate: Some(predicate),
            } => scan(predicate, &mut max),
            ActivationTemplate::Having { predicate: None }
            | ActivationTemplate::Participate
            | ActivationTemplate::TopN { .. } => {}
        }
    }
    if let StatementKind::Query { compute, .. } = &spec.kind {
        for column in compute {
            scan(&column.expr, &mut max);
        }
    }
    if let StatementKind::Update { template, .. } = &spec.kind {
        match template {
            UpdateTemplate::Insert { values } => {
                for e in values {
                    scan(e, &mut max);
                }
            }
            UpdateTemplate::Update {
                assignments,
                predicate,
            } => {
                for (_, e) in assignments {
                    scan(e, &mut max);
                }
                scan(predicate, &mut max);
            }
            UpdateTemplate::Delete { predicate } => scan(predicate, &mut max),
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{chunk_flags, read_frame, write_frame, Frame, PROTOCOL_VERSION};
    use shareddb_common::{tuple, DataType, Value};
    use shareddb_storage::TableDef;
    use std::net::TcpStream;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_TITLE", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..100i64)
                    .map(|i| tuple![i, format!("t{i}"), i as f64])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    fn workload() -> Vec<(&'static str, &'static str)> {
        vec![
            ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
            ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
        ]
    }

    fn run_raw_session(server_config: ServerConfig) {
        let mut server = Server::start_sql(
            catalog(),
            &workload(),
            EngineConfig::default(),
            server_config,
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                client_name: "raw".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::HelloOk {
                statement_count, ..
            } => assert_eq!(statement_count, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Keepalive no-op.
        write_frame(&mut stream, &Frame::Ping { request_id: 99 }).unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::Pong { request_id } => assert_eq!(request_id, 99),
            other => panic!("unexpected {other:?}"),
        }
        // Prepare + execute.
        write_frame(
            &mut stream,
            &Frame::Prepare {
                request_id: 1,
                name: "getItem".into(),
            },
        )
        .unwrap();
        let (statement_id, param_count) = match read_frame(&mut stream).unwrap().unwrap() {
            Frame::Prepared {
                request_id,
                statement_id,
                param_count,
                is_update,
            } => {
                assert_eq!(request_id, 1);
                assert!(!is_update);
                (statement_id, param_count)
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(param_count, 1);
        write_frame(
            &mut stream,
            &Frame::ExecutePrepared {
                request_id: 2,
                statement_id,
                params: vec![Value::Int(42)],
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::ResultChunk {
                request_id,
                flags,
                rows,
                schema,
                ..
            } => {
                assert_eq!(request_id, 2);
                assert_eq!(flags, chunk_flags::FIRST | chunk_flags::LAST);
                assert_eq!(schema.len(), 3);
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0][0], Value::Int(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Ad-hoc SQL matches the registered statement type.
        write_frame(
            &mut stream,
            &Frame::Query {
                request_id: 3,
                sql: "select * from item where i_id = 7".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::ResultChunk { rows, .. } => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0][0], Value::Int(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown statement type.
        write_frame(
            &mut stream,
            &Frame::Query {
                request_id: 4,
                sql: "SELECT * FROM ITEM WHERE I_TITLE = 'x'".into(),
            },
        )
        .unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => {
                assert_eq!(code, crate::protocol::error_codes::UNKNOWN_STATEMENT)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Stats + goodbye.
        write_frame(&mut stream, &Frame::Stats { request_id: 5 }).unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::StatsReply { stats, .. } => {
                assert_eq!(stats.queries, 2);
                assert_eq!(stats.sessions, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        write_frame(&mut stream, &Frame::Goodbye).unwrap();
        match read_frame(&mut stream).unwrap().unwrap() {
            Frame::GoodbyeOk => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_active, 0);
    }

    /// Raw-socket smoke test of the whole reactor path (the full client
    /// library has its own loopback integration tests).
    #[test]
    fn raw_session_round_trip() {
        run_raw_session(ServerConfig::default());
    }

    /// The same protocol conversation over the portable fallback poller.
    #[test]
    fn raw_session_round_trip_portable_poller() {
        run_raw_session(ServerConfig {
            force_portable_poller: true,
            ..ServerConfig::default()
        });
    }

    #[test]
    fn param_counts_cover_all_template_kinds() {
        let catalog = catalog();
        let (_, registry) = compile_workload(&catalog, &workload()).unwrap();
        let counts: Vec<usize> = registry.iter().map(spec_param_count).collect();
        assert_eq!(counts, vec![1, 3]);
    }
}

//! The SharedDB wire protocol: length-prefixed binary frames over TCP.
//!
//! ## Framing
//!
//! Every frame is `u32 length (LE) | u8 opcode | body`; the length counts the
//! opcode byte plus the body. Integers are little-endian; strings are
//! `u32 length | UTF-8 bytes`; values are tagged (see [`encode_value`]).
//!
//! ## Frames
//!
//! | Opcode | Direction | Frame | Body |
//! |--------|-----------|-------|------|
//! | `0x01` | C→S | [`Frame::Hello`] | `u16 version, string client_name` |
//! | `0x02` | C→S | [`Frame::Query`] | `u64 request_id, string sql` — ad-hoc SQL, matched against the compiled statement types by auto-parameterisation |
//! | `0x03` | C→S | [`Frame::Prepare`] | `u64 request_id, string statement_name` |
//! | `0x04` | C→S | [`Frame::ExecutePrepared`] | `u64 request_id, u32 statement_id, values params` |
//! | `0x05` | C→S | [`Frame::Stats`] | `u64 request_id` |
//! | `0x06` | C→S | [`Frame::Goodbye`] | empty |
//! | `0x07` | C→S | [`Frame::Ping`] | `u64 request_id` — keepalive no-op |
//! | `0x08` | C→S | [`Frame::Explain`] | `u64 request_id, u8 analyze, string sql` — plan introspection (v4) |
//! | `0x81` | S→C | [`Frame::HelloOk`] | `u16 version, string server_name, u32 statement_count` |
//! | `0x82` | S→C | [`Frame::Prepared`] | `u64 request_id, u32 statement_id, u32 param_count, u8 is_update` |
//! | `0x83` | S→C | [`Frame::ResultChunk`] | `u64 request_id, u8 flags, u64 rows_affected, [schema], [rows]` |
//! | `0x84` | S→C | [`Frame::Error`] | `u64 request_id, u8 code, u8 retryable, string message` |
//! | `0x85` | S→C | [`Frame::StatsReply`] | engine + server counters, see [`WireStats`] |
//! | `0x86` | S→C | [`Frame::GoodbyeOk`] | empty |
//! | `0x87` | S→C | [`Frame::Pong`] | `u64 request_id` |
//! | `0x88` | S→C | [`Frame::ExplainReply`] | annotated statement subtree, see [`WireExplain`] (v4) |
//!
//! A query result is a sequence of [`Frame::ResultChunk`]s sharing the
//! request id: the first carries [`chunk_flags::FIRST`] and the result schema,
//! the final one [`chunk_flags::LAST`]. Updates are a single chunk with
//! [`chunk_flags::UPDATE`] and `rows_affected`. Responses to the requests of
//! one connection are delivered strictly in submission order, which is what
//! makes client-side pipelining possible.
//!
//! Backpressure rejections use [`Frame::Error`] with `retryable = true`
//! (error code [`error_codes::OVERLOADED`]): the statement was *not* admitted
//! and the client may back off and retry.

use shareddb_common::{DataType, Error, Result, Value};
use std::io::{Read, Write};

/// Protocol version spoken by this build. v2 added the per-replica section
/// of [`Frame::StatsReply`] (the engine-cluster frontend); v3 extended it
/// with per-replica operator utilisation and per-statement phase-tagged
/// latency summaries (the observability PR); v4 added
/// [`Frame::Explain`]/[`Frame::ExplainReply`] — EXPLAIN / EXPLAIN ANALYZE of
/// a statement's view of the shared global plan, with per-statement-type
/// cost attribution.
pub const PROTOCOL_VERSION: u16 = 4;

/// Frames larger than this are rejected (malformed or hostile peer).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Flag bits of [`Frame::ResultChunk`].
pub mod chunk_flags {
    /// First chunk of a result (carries the schema for row results).
    pub const FIRST: u8 = 1;
    /// Final chunk of a result.
    pub const LAST: u8 = 2;
    /// The result is an update acknowledgement (`rows_affected` is valid,
    /// there is no schema and there are no rows).
    pub const UPDATE: u8 = 4;
}

/// Error codes of [`Frame::Error`].
pub mod error_codes {
    /// SQL parse error.
    pub const PARSE: u8 = 1;
    /// Unknown table.
    pub const UNKNOWN_TABLE: u8 = 2;
    /// Unknown column.
    pub const UNKNOWN_COLUMN: u8 = 3;
    /// Value type mismatch.
    pub const TYPE_MISMATCH: u8 = 4;
    /// Bad prepared-statement parameter.
    pub const INVALID_PARAMETER: u8 = 5;
    /// The statement type is not part of the compiled global plan.
    pub const UNKNOWN_STATEMENT: u8 = 6;
    /// Constraint violation.
    pub const CONSTRAINT: u8 = 7;
    /// The server is shutting down.
    pub const SHUTDOWN: u8 = 8;
    /// The statement missed its deadline.
    pub const DEADLINE: u8 = 9;
    /// Internal error.
    pub const INTERNAL: u8 = 10;
    /// Recovery error.
    pub const RECOVERY: u8 = 11;
    /// I/O error.
    pub const IO: u8 = 12;
    /// Recognised but unsupported feature.
    pub const UNSUPPORTED: u8 = 13;
    /// Admission control rejected the request; retry after backing off.
    pub const OVERLOADED: u8 = 14;
}

/// Utilisation of one shared operator of a replica's global plan (v3).
///
/// Fractions travel as fixed-point integers so the frame stays `Eq` and
/// float-free: `busy_ppm` is the busy fraction of the statistics window in
/// parts-per-million, `tuples_per_cycle_milli` is tuples emitted per *active*
/// cycle times 1000.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireOperatorStats {
    /// Operator id (index into the global plan).
    pub operator: u32,
    /// Busy time / statistics-window wall time, in parts-per-million.
    pub busy_ppm: u32,
    /// Tuples emitted per cycle that had active queries, ×1000.
    pub tuples_per_cycle_milli: u64,
    /// Cycles this operator ran.
    pub cycles: u64,
    /// Tuples this operator emitted.
    pub tuples: u64,
}

/// Latency summary of one execution phase (v3): the histogram's counters
/// plus its extracted percentiles, all in microseconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WirePhaseSummary {
    /// Phase tag (decode with `shareddb_core::Phase::from_u8`).
    pub phase: u8,
    /// Durations recorded.
    pub count: u64,
    /// Sum of recorded durations, µs.
    pub sum_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
    /// 50th percentile (histogram-bucket resolution), µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
}

/// Phase-tagged latency summaries of one statement type (v3). Only phases
/// that recorded at least one duration are present.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStatementPhases {
    /// Statement name.
    pub statement: String,
    /// Non-empty phase summaries, in phase order.
    pub phases: Vec<WirePhaseSummary>,
}

/// Per-replica engine counters reported by [`Frame::StatsReply`] when the
/// server runs an engine cluster (one entry per replica, in replica order;
/// a single-engine server reports one entry).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireReplicaStats {
    /// Batches executed by this replica.
    pub batches: u64,
    /// Queries answered by this replica.
    pub queries: u64,
    /// Updates applied by this replica.
    pub updates: u64,
    /// Statements that failed on this replica.
    pub failed: u64,
    /// Statements in this replica's admission queue.
    pub queued: u64,
    /// Per-operator utilisation (v3).
    pub operators: Vec<WireOperatorStats>,
    /// Per-statement phase-tagged latency summaries (v3).
    pub statements: Vec<WireStatementPhases>,
}

/// Engine and server counters reported by [`Frame::StatsReply`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Batches executed.
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Updates applied.
    pub updates: u64,
    /// Statements that failed.
    pub failed: u64,
    /// Statements admitted but not yet batched.
    pub queued: u64,
    /// Currently connected sessions.
    pub sessions: u64,
    /// Requests rejected by admission control since the server started.
    pub rejected: u64,
    /// Per-replica breakdown (replica order); one entry per engine replica.
    pub replicas: Vec<WireReplicaStats>,
    /// Cluster-level phase summaries — scatter and merge of fanned-out
    /// statements, which happen outside any single replica (v3).
    pub cluster: Vec<WireStatementPhases>,
}

/// One statement type's share of an operator's work (v4): how much of the
/// operator's busy time, and how many of its output rows, were attributed to
/// this statement type by the batch activation mix. The statement name
/// `"_idle"` covers cycles the operator ran without an activation of its own.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireAttributedCost {
    /// Statement type name (or `"_idle"`).
    pub statement: String,
    /// Activations of this statement type the operator processed.
    pub activations: u64,
    /// Output rows attributed to this statement type.
    pub rows: u64,
    /// Busy time attributed to this statement type, µs.
    pub busy_us: u64,
}

/// One operator of the explained statement's subtree (v4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireExplainNode {
    /// Operator id (index into the global plan).
    pub operator: u32,
    /// Operator name, e.g. `"Scan(ITEM)#0"`.
    pub name: String,
    /// Plan ids of the operator's inputs **within this subtree**.
    pub inputs: Vec<u32>,
    /// Names of every statement type sharing this operator (the sharing
    /// factor is this list's length).
    pub sharing: Vec<String>,
    /// Whether the explained statement activates this operator directly.
    pub activated: bool,
    /// Cycles the operator ran (EXPLAIN ANALYZE only, else 0).
    pub cycles: u64,
    /// Tuples the operator emitted (EXPLAIN ANALYZE only, else 0).
    pub tuples: u64,
    /// Total busy time, µs (EXPLAIN ANALYZE only, else 0).
    pub busy_us: u64,
    /// Per-statement-type cost attribution (EXPLAIN ANALYZE only).
    pub attributed: Vec<WireAttributedCost>,
}

/// The [`Frame::ExplainReply`] payload (v4): the explained statement's
/// operator subtree of the shared global plan, annotated with sharing sets
/// and — for EXPLAIN ANALYZE — live runtime statistics and per-statement
/// cost attribution, plus the server-rendered text form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireExplain {
    /// The matched statement type.
    pub statement: String,
    /// True for EXPLAIN ANALYZE (runtime stats populated).
    pub analyze: bool,
    /// Plan id of the statement's root operator; `u32::MAX` for updates
    /// (which have no operator subtree — they apply on the storage owner).
    pub root: u32,
    /// The subtree's operators, in plan-id order.
    pub nodes: Vec<WireExplainNode>,
    /// The server-rendered text plan (what `EXPLAIN` prints).
    pub text: String,
}

impl WireExplain {
    /// Looks up a subtree node by plan id.
    pub fn node(&self, operator: u32) -> Option<&WireExplainNode> {
        self.nodes.iter().find(|n| n.operator == operator)
    }

    /// Nodes shared by more than one statement type.
    pub fn shared_nodes(&self) -> Vec<&WireExplainNode> {
        self.nodes.iter().filter(|n| n.sharing.len() > 1).collect()
    }

    /// The sharing factor of one operator (0 when it is not in the subtree).
    pub fn sharing_factor(&self, operator: u32) -> usize {
        self.node(operator).map(|n| n.sharing.len()).unwrap_or(0)
    }

    /// Busy µs of `operator` attributed to `statement` (0 when absent).
    pub fn attributed_busy_us(&self, operator: u32, statement: &str) -> u64 {
        self.node(operator)
            .and_then(|n| n.attributed.iter().find(|a| a.statement == statement))
            .map(|a| a.busy_us)
            .unwrap_or(0)
    }
}

/// One column of a result schema on the wire.
pub type WireColumn = (String, DataType);

/// A protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client greeting; must be the first frame of a connection.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Client identification for diagnostics.
        client_name: String,
    },
    /// Ad-hoc SQL execution (auto-parameterised against the compiled plan).
    Query {
        /// Client-chosen id echoed on every response frame.
        request_id: u64,
        /// The SQL text.
        sql: String,
    },
    /// Looks up a registered statement type by name.
    Prepare {
        /// Client-chosen id echoed on the response.
        request_id: u64,
        /// Statement name, e.g. `"getBestSellers"`.
        name: String,
    },
    /// Executes a prepared statement with bound parameters.
    ExecutePrepared {
        /// Client-chosen id echoed on every response frame.
        request_id: u64,
        /// Statement id from [`Frame::Prepared`].
        statement_id: u32,
        /// Positional parameters.
        params: Vec<Value>,
    },
    /// Requests server statistics.
    Stats {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
    /// Orderly connection termination.
    Goodbye,
    /// Keepalive no-op: answered with [`Frame::Pong`] without touching the
    /// engine. Lets idle clients verify liveness and lets tests exercise the
    /// incremental frame decoder with tiny frames.
    Ping {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
    /// EXPLAIN / EXPLAIN ANALYZE (v4): resolves `sql` — a registered
    /// statement name or ad-hoc SQL, with or without a leading
    /// `EXPLAIN [ANALYZE]` — against the compiled statement types and
    /// answers with the statement's annotated view of the global plan.
    Explain {
        /// Client-chosen id echoed on the response.
        request_id: u64,
        /// Request runtime statistics and cost attribution too.
        analyze: bool,
        /// Statement name or SQL text.
        sql: String,
    },
    /// Server greeting.
    HelloOk {
        /// Protocol version the server speaks.
        version: u16,
        /// Server identification.
        server_name: String,
        /// Number of registered statement types.
        statement_count: u32,
    },
    /// Prepared-statement metadata.
    Prepared {
        /// Echoed request id.
        request_id: u64,
        /// Statement id for [`Frame::ExecutePrepared`].
        statement_id: u32,
        /// Number of positional parameters the statement takes.
        param_count: u32,
        /// True for INSERT/UPDATE/DELETE statements.
        is_update: bool,
    },
    /// One chunk of a result (see [`chunk_flags`]).
    ResultChunk {
        /// Echoed request id.
        request_id: u64,
        /// Chunk flags.
        flags: u8,
        /// Affected row count (update results only).
        rows_affected: u64,
        /// Result schema (first chunk of a row result only).
        schema: Vec<WireColumn>,
        /// Result rows of this chunk.
        rows: Vec<Vec<Value>>,
    },
    /// Request failure.
    Error {
        /// Echoed request id (0 for connection-level errors).
        request_id: u64,
        /// Error code (see [`error_codes`]).
        code: u8,
        /// True when the request may be retried after backing off.
        retryable: bool,
        /// Human-readable description.
        message: String,
    },
    /// Statistics snapshot.
    StatsReply {
        /// Echoed request id.
        request_id: u64,
        /// The counters.
        stats: WireStats,
    },
    /// Acknowledges [`Frame::Goodbye`]; the server closes after sending it.
    GoodbyeOk,
    /// Answers [`Frame::Ping`].
    Pong {
        /// Echoed request id.
        request_id: u64,
    },
    /// Answers [`Frame::Explain`] (v4).
    ExplainReply {
        /// Echoed request id.
        request_id: u64,
        /// The annotated statement subtree.
        explain: WireExplain,
    },
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends the tagged encoding of one [`Value`].
pub fn encode_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => put_u8(buf, 0),
        Value::Int(v) => {
            put_u8(buf, 1);
            put_u64(buf, *v as u64);
        }
        Value::Float(v) => {
            put_u8(buf, 2);
            put_u64(buf, v.to_bits());
        }
        Value::Text(s) => {
            put_u8(buf, 3);
            put_string(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, 4);
            put_u8(buf, *b as u8);
        }
        Value::Date(v) => {
            put_u8(buf, 5);
            put_u64(buf, *v as u64);
        }
    }
}

fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bool => 4,
        DataType::Date => 5,
    }
}

fn data_type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bool,
        5 => DataType::Date,
        other => return Err(malformed(format!("bad data type tag {other}"))),
    })
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn malformed(msg: impl Into<String>) -> Error {
    Error::Io(format!("malformed frame: {}", msg.into()))
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(malformed("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.string()?),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Date(self.u64()? as i64),
            other => return Err(malformed(format!("bad value tag {other}"))),
        })
    }

    fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(malformed("trailing bytes"));
        }
        Ok(())
    }
}

fn put_values(buf: &mut Vec<u8>, values: &[Value]) {
    put_u32(buf, values.len() as u32);
    for v in values {
        encode_value(buf, v);
    }
}

fn put_statement_phases(buf: &mut Vec<u8>, statements: &[WireStatementPhases]) {
    put_u32(buf, statements.len() as u32);
    for stmt in statements {
        put_string(buf, &stmt.statement);
        put_u32(buf, stmt.phases.len() as u32);
        for p in &stmt.phases {
            put_u8(buf, p.phase);
            put_u64(buf, p.count);
            put_u64(buf, p.sum_us);
            put_u64(buf, p.max_us);
            put_u64(buf, p.p50_us);
            put_u64(buf, p.p95_us);
            put_u64(buf, p.p99_us);
        }
    }
}

fn read_statement_phases(c: &mut Cursor<'_>) -> Result<Vec<WireStatementPhases>> {
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let statement = c.string()?;
        let n_phases = c.u32()? as usize;
        let mut phases = Vec::with_capacity(n_phases.min(16));
        for _ in 0..n_phases {
            phases.push(WirePhaseSummary {
                phase: c.u8()?,
                count: c.u64()?,
                sum_us: c.u64()?,
                max_us: c.u64()?,
                p50_us: c.u64()?,
                p95_us: c.u64()?,
                p99_us: c.u64()?,
            });
        }
        out.push(WireStatementPhases { statement, phases });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------------

impl Frame {
    fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Query { .. } => 0x02,
            Frame::Prepare { .. } => 0x03,
            Frame::ExecutePrepared { .. } => 0x04,
            Frame::Stats { .. } => 0x05,
            Frame::Goodbye => 0x06,
            Frame::Ping { .. } => 0x07,
            Frame::HelloOk { .. } => 0x81,
            Frame::Prepared { .. } => 0x82,
            Frame::ResultChunk { .. } => 0x83,
            Frame::Error { .. } => 0x84,
            Frame::StatsReply { .. } => 0x85,
            Frame::Explain { .. } => 0x08,
            Frame::GoodbyeOk => 0x86,
            Frame::Pong { .. } => 0x87,
            Frame::ExplainReply { .. } => 0x88,
        }
    }

    /// Encodes the frame (length prefix included) into a byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u8(&mut body, self.opcode());
        match self {
            Frame::Hello {
                version,
                client_name,
            } => {
                put_u16(&mut body, *version);
                put_string(&mut body, client_name);
            }
            Frame::Query { request_id, sql } => {
                put_u64(&mut body, *request_id);
                put_string(&mut body, sql);
            }
            Frame::Prepare { request_id, name } => {
                put_u64(&mut body, *request_id);
                put_string(&mut body, name);
            }
            Frame::ExecutePrepared {
                request_id,
                statement_id,
                params,
            } => {
                put_u64(&mut body, *request_id);
                put_u32(&mut body, *statement_id);
                put_values(&mut body, params);
            }
            Frame::Stats { request_id }
            | Frame::Ping { request_id }
            | Frame::Pong { request_id } => {
                put_u64(&mut body, *request_id);
            }
            Frame::Explain {
                request_id,
                analyze,
                sql,
            } => {
                put_u64(&mut body, *request_id);
                put_u8(&mut body, *analyze as u8);
                put_string(&mut body, sql);
            }
            Frame::ExplainReply {
                request_id,
                explain,
            } => {
                put_u64(&mut body, *request_id);
                put_string(&mut body, &explain.statement);
                put_u8(&mut body, explain.analyze as u8);
                put_u32(&mut body, explain.root);
                put_u32(&mut body, explain.nodes.len() as u32);
                for node in &explain.nodes {
                    put_u32(&mut body, node.operator);
                    put_string(&mut body, &node.name);
                    put_u32(&mut body, node.inputs.len() as u32);
                    for input in &node.inputs {
                        put_u32(&mut body, *input);
                    }
                    put_u32(&mut body, node.sharing.len() as u32);
                    for statement in &node.sharing {
                        put_string(&mut body, statement);
                    }
                    put_u8(&mut body, node.activated as u8);
                    put_u64(&mut body, node.cycles);
                    put_u64(&mut body, node.tuples);
                    put_u64(&mut body, node.busy_us);
                    put_u32(&mut body, node.attributed.len() as u32);
                    for cost in &node.attributed {
                        put_string(&mut body, &cost.statement);
                        put_u64(&mut body, cost.activations);
                        put_u64(&mut body, cost.rows);
                        put_u64(&mut body, cost.busy_us);
                    }
                }
                put_string(&mut body, &explain.text);
            }
            Frame::Goodbye | Frame::GoodbyeOk => {}
            Frame::HelloOk {
                version,
                server_name,
                statement_count,
            } => {
                put_u16(&mut body, *version);
                put_string(&mut body, server_name);
                put_u32(&mut body, *statement_count);
            }
            Frame::Prepared {
                request_id,
                statement_id,
                param_count,
                is_update,
            } => {
                put_u64(&mut body, *request_id);
                put_u32(&mut body, *statement_id);
                put_u32(&mut body, *param_count);
                put_u8(&mut body, *is_update as u8);
            }
            Frame::ResultChunk {
                request_id,
                flags,
                rows_affected,
                schema,
                rows,
            } => {
                put_u64(&mut body, *request_id);
                put_u8(&mut body, *flags);
                put_u64(&mut body, *rows_affected);
                put_u32(&mut body, schema.len() as u32);
                for (name, dt) in schema {
                    put_string(&mut body, name);
                    put_u8(&mut body, data_type_tag(*dt));
                }
                put_u32(&mut body, rows.len() as u32);
                for row in rows {
                    put_values(&mut body, row);
                }
            }
            Frame::Error {
                request_id,
                code,
                retryable,
                message,
            } => {
                put_u64(&mut body, *request_id);
                put_u8(&mut body, *code);
                put_u8(&mut body, *retryable as u8);
                put_string(&mut body, message);
            }
            Frame::StatsReply { request_id, stats } => {
                put_u64(&mut body, *request_id);
                put_u64(&mut body, stats.batches);
                put_u64(&mut body, stats.queries);
                put_u64(&mut body, stats.updates);
                put_u64(&mut body, stats.failed);
                put_u64(&mut body, stats.queued);
                put_u64(&mut body, stats.sessions);
                put_u64(&mut body, stats.rejected);
                put_u32(&mut body, stats.replicas.len() as u32);
                for replica in &stats.replicas {
                    put_u64(&mut body, replica.batches);
                    put_u64(&mut body, replica.queries);
                    put_u64(&mut body, replica.updates);
                    put_u64(&mut body, replica.failed);
                    put_u64(&mut body, replica.queued);
                    put_u32(&mut body, replica.operators.len() as u32);
                    for op in &replica.operators {
                        put_u32(&mut body, op.operator);
                        put_u32(&mut body, op.busy_ppm);
                        put_u64(&mut body, op.tuples_per_cycle_milli);
                        put_u64(&mut body, op.cycles);
                        put_u64(&mut body, op.tuples);
                    }
                    put_statement_phases(&mut body, &replica.statements);
                }
                put_statement_phases(&mut body, &stats.cluster);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a frame body (the bytes after the length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame> {
        let mut c = Cursor { buf: body, pos: 0 };
        let opcode = c.u8()?;
        let frame = match opcode {
            0x01 => Frame::Hello {
                version: c.u16()?,
                client_name: c.string()?,
            },
            0x02 => Frame::Query {
                request_id: c.u64()?,
                sql: c.string()?,
            },
            0x03 => Frame::Prepare {
                request_id: c.u64()?,
                name: c.string()?,
            },
            0x04 => Frame::ExecutePrepared {
                request_id: c.u64()?,
                statement_id: c.u32()?,
                params: c.values()?,
            },
            0x05 => Frame::Stats {
                request_id: c.u64()?,
            },
            0x06 => Frame::Goodbye,
            0x07 => Frame::Ping {
                request_id: c.u64()?,
            },
            0x08 => Frame::Explain {
                request_id: c.u64()?,
                analyze: c.u8()? != 0,
                sql: c.string()?,
            },
            0x81 => Frame::HelloOk {
                version: c.u16()?,
                server_name: c.string()?,
                statement_count: c.u32()?,
            },
            0x82 => Frame::Prepared {
                request_id: c.u64()?,
                statement_id: c.u32()?,
                param_count: c.u32()?,
                is_update: c.u8()? != 0,
            },
            0x83 => {
                let request_id = c.u64()?;
                let flags = c.u8()?;
                let rows_affected = c.u64()?;
                let n_cols = c.u32()? as usize;
                let mut schema = Vec::with_capacity(n_cols.min(1024));
                for _ in 0..n_cols {
                    let name = c.string()?;
                    let dt = data_type_from_tag(c.u8()?)?;
                    schema.push((name, dt));
                }
                let n_rows = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n_rows.min(4096));
                for _ in 0..n_rows {
                    rows.push(c.values()?);
                }
                Frame::ResultChunk {
                    request_id,
                    flags,
                    rows_affected,
                    schema,
                    rows,
                }
            }
            0x84 => Frame::Error {
                request_id: c.u64()?,
                code: c.u8()?,
                retryable: c.u8()? != 0,
                message: c.string()?,
            },
            0x85 => {
                let request_id = c.u64()?;
                let mut stats = WireStats {
                    batches: c.u64()?,
                    queries: c.u64()?,
                    updates: c.u64()?,
                    failed: c.u64()?,
                    queued: c.u64()?,
                    sessions: c.u64()?,
                    rejected: c.u64()?,
                    replicas: Vec::new(),
                    cluster: Vec::new(),
                };
                let n_replicas = c.u32()? as usize;
                for _ in 0..n_replicas.min(4096) {
                    let mut replica = WireReplicaStats {
                        batches: c.u64()?,
                        queries: c.u64()?,
                        updates: c.u64()?,
                        failed: c.u64()?,
                        queued: c.u64()?,
                        ..WireReplicaStats::default()
                    };
                    let n_ops = c.u32()? as usize;
                    for _ in 0..n_ops.min(4096) {
                        replica.operators.push(WireOperatorStats {
                            operator: c.u32()?,
                            busy_ppm: c.u32()?,
                            tuples_per_cycle_milli: c.u64()?,
                            cycles: c.u64()?,
                            tuples: c.u64()?,
                        });
                    }
                    replica.statements = read_statement_phases(&mut c)?;
                    stats.replicas.push(replica);
                }
                stats.cluster = read_statement_phases(&mut c)?;
                Frame::StatsReply { request_id, stats }
            }
            0x86 => Frame::GoodbyeOk,
            0x87 => Frame::Pong {
                request_id: c.u64()?,
            },
            0x88 => {
                let request_id = c.u64()?;
                let statement = c.string()?;
                let analyze = c.u8()? != 0;
                let root = c.u32()?;
                let n_nodes = c.u32()? as usize;
                let mut nodes = Vec::with_capacity(n_nodes.min(4096));
                for _ in 0..n_nodes {
                    let operator = c.u32()?;
                    let name = c.string()?;
                    let n_inputs = c.u32()? as usize;
                    let mut inputs = Vec::with_capacity(n_inputs.min(64));
                    for _ in 0..n_inputs {
                        inputs.push(c.u32()?);
                    }
                    let n_sharing = c.u32()? as usize;
                    let mut sharing = Vec::with_capacity(n_sharing.min(1024));
                    for _ in 0..n_sharing {
                        sharing.push(c.string()?);
                    }
                    let activated = c.u8()? != 0;
                    let cycles = c.u64()?;
                    let tuples = c.u64()?;
                    let busy_us = c.u64()?;
                    let n_attributed = c.u32()? as usize;
                    let mut attributed = Vec::with_capacity(n_attributed.min(1024));
                    for _ in 0..n_attributed {
                        attributed.push(WireAttributedCost {
                            statement: c.string()?,
                            activations: c.u64()?,
                            rows: c.u64()?,
                            busy_us: c.u64()?,
                        });
                    }
                    nodes.push(WireExplainNode {
                        operator,
                        name,
                        inputs,
                        sharing,
                        activated,
                        cycles,
                        tuples,
                        busy_us,
                        attributed,
                    });
                }
                let text = c.string()?;
                Frame::ExplainReply {
                    request_id,
                    explain: WireExplain {
                        statement,
                        analyze,
                        root,
                        nodes,
                        text,
                    },
                }
            }
            other => return Err(malformed(format!("unknown opcode {other:#x}"))),
        };
        c.done()?;
        Ok(frame)
    }
}

/// Writes one frame to a stream. Refuses frames whose body exceeds
/// [`MAX_FRAME_LEN`] — emitting one would silently truncate the `u32` length
/// prefix and desynchronise the stream for the peer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let bytes = frame.encode();
    if bytes.len() - 4 > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
                bytes.len() - 4
            ),
        ));
    }
    w.write_all(&bytes)
}

/// Incremental frame decoder for nonblocking readers.
///
/// The reactor feeds whatever bytes `read(2)` returned via
/// [`FrameDecoder::push`] and pops complete frames with
/// [`FrameDecoder::poll_frame`]; partial frames simply stay buffered until
/// more bytes arrive. This replaces blocking `read_exact` framing: a client
/// that stalls mid-frame costs a buffer, not a parked thread.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes to the frame buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is decoded frames.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 16 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, or `Ok(None)` when more bytes are
    /// needed. A malformed length prefix or body is a protocol error; the
    /// connection must be dropped (the stream can no longer be framed).
    pub fn poll_frame(&mut self) -> Result<Option<Frame>> {
        let available = &self.buf[self.pos..];
        if available.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(available[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(malformed(format!("bad frame length {len}")));
        }
        if available.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::decode(&available[4..4 + len])?;
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// True when a frame has started arriving but is not yet complete (after
    /// [`FrameDecoder::poll_frame`] has been polled to exhaustion). Drives
    /// the stalled-client timeout.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered (complete + partial).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The undecoded bytes, without consuming them. The reactor sniffs these
    /// on a fresh connection to tell an HTTP metrics scrape (ASCII method
    /// prefix) from a binary frame stream (LE length prefix).
    pub fn peek(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Discards any partially received frame (used when a draining server
    /// stops reading).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(malformed("eof inside length prefix"));
            }
            Ok(n) => filled += n,
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(malformed(format!("bad frame length {len}")));
    }
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(malformed("eof inside frame body")),
            Ok(n) => read += n,
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    Frame::decode(&body).map(Some)
}

/// Maps an engine error to its wire representation `(code, retryable)`.
pub fn error_to_wire(error: &Error) -> (u8, bool) {
    use error_codes::*;
    match error {
        Error::Parse(_) => (PARSE, false),
        Error::UnknownTable(_) => (UNKNOWN_TABLE, false),
        Error::UnknownColumn(_) => (UNKNOWN_COLUMN, false),
        Error::TypeMismatch { .. } => (TYPE_MISMATCH, false),
        Error::InvalidParameter(_) => (INVALID_PARAMETER, false),
        Error::UnknownStatement(_) => (UNKNOWN_STATEMENT, false),
        Error::ConstraintViolation(_) => (CONSTRAINT, false),
        Error::EngineShutdown => (SHUTDOWN, false),
        Error::Overloaded(_) => (OVERLOADED, true),
        Error::DeadlineExceeded => (DEADLINE, false),
        Error::Internal(_) => (INTERNAL, false),
        Error::Recovery(_) => (RECOVERY, false),
        Error::Io(_) => (IO, false),
        Error::Unsupported(_) => (UNSUPPORTED, false),
    }
}

/// Reconstructs an engine error from its wire representation.
pub fn wire_to_error(code: u8, retryable: bool, message: &str) -> Error {
    use error_codes::*;
    let msg = message.to_string();
    match code {
        PARSE => Error::Parse(msg),
        UNKNOWN_TABLE => Error::UnknownTable(msg),
        UNKNOWN_COLUMN => Error::UnknownColumn(msg),
        TYPE_MISMATCH => Error::TypeMismatch {
            expected: "see message".into(),
            found: msg,
        },
        INVALID_PARAMETER => Error::InvalidParameter(msg),
        UNKNOWN_STATEMENT => Error::UnknownStatement(msg),
        CONSTRAINT => Error::ConstraintViolation(msg),
        SHUTDOWN => Error::EngineShutdown,
        DEADLINE => Error::DeadlineExceeded,
        RECOVERY => Error::Recovery(msg),
        IO => Error::Io(msg),
        UNSUPPORTED => Error::Unsupported(msg),
        OVERLOADED => Error::Overloaded(msg),
        _ => {
            if retryable {
                Error::Overloaded(msg)
            } else {
                Error::Internal(msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let encoded = frame.encode();
        let len = u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize;
        assert_eq!(len, encoded.len() - 4);
        let decoded = Frame::decode(&encoded[4..]).unwrap();
        assert_eq!(decoded, frame);
        // And through the stream reader.
        let mut cursor = std::io::Cursor::new(encoded);
        let read = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(read, frame);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            client_name: "test-client".into(),
        });
        round_trip(Frame::Query {
            request_id: 7,
            sql: "SELECT * FROM ITEM WHERE I_ID = 3".into(),
        });
        round_trip(Frame::Prepare {
            request_id: 8,
            name: "getBestSellers".into(),
        });
        round_trip(Frame::ExecutePrepared {
            request_id: 9,
            statement_id: 4,
            params: vec![
                Value::Null,
                Value::Int(-5),
                Value::Float(2.75),
                Value::text("BOOKS"),
                Value::Bool(true),
                Value::Date(20_000),
            ],
        });
        round_trip(Frame::Stats { request_id: 10 });
        round_trip(Frame::Goodbye);
        round_trip(Frame::Ping { request_id: 77 });
        round_trip(Frame::Pong { request_id: 77 });
        round_trip(Frame::HelloOk {
            version: PROTOCOL_VERSION,
            server_name: "shareddb".into(),
            statement_count: 28,
        });
        round_trip(Frame::Prepared {
            request_id: 8,
            statement_id: 4,
            param_count: 2,
            is_update: true,
        });
        round_trip(Frame::ResultChunk {
            request_id: 9,
            flags: chunk_flags::FIRST | chunk_flags::LAST,
            rows_affected: 0,
            schema: vec![
                ("I_ID".into(), DataType::Int),
                ("I_TITLE".into(), DataType::Text),
            ],
            rows: vec![
                vec![Value::Int(1), Value::text("a book")],
                vec![Value::Int(2), Value::Null],
            ],
        });
        round_trip(Frame::ResultChunk {
            request_id: 11,
            flags: chunk_flags::FIRST | chunk_flags::LAST | chunk_flags::UPDATE,
            rows_affected: 3,
            schema: vec![],
            rows: vec![],
        });
        round_trip(Frame::Error {
            request_id: 12,
            code: error_codes::OVERLOADED,
            retryable: true,
            message: "queue full".into(),
        });
        round_trip(Frame::StatsReply {
            request_id: 13,
            stats: WireStats {
                batches: 1,
                queries: 2,
                updates: 3,
                failed: 4,
                queued: 5,
                sessions: 6,
                rejected: 7,
                replicas: vec![
                    WireReplicaStats {
                        batches: 1,
                        queries: 2,
                        updates: 0,
                        failed: 0,
                        queued: 3,
                        operators: vec![WireOperatorStats {
                            operator: 4,
                            busy_ppm: 125_000,
                            tuples_per_cycle_milli: 1_500,
                            cycles: 10,
                            tuples: 15,
                        }],
                        statements: vec![WireStatementPhases {
                            statement: "getItem".into(),
                            phases: vec![WirePhaseSummary {
                                phase: 2,
                                count: 100,
                                sum_us: 5_000,
                                max_us: 90,
                                p50_us: 31,
                                p95_us: 63,
                                p99_us: 90,
                            }],
                        }],
                    },
                    WireReplicaStats::default(),
                ],
                cluster: vec![WireStatementPhases {
                    statement: "getBestSellers".into(),
                    phases: vec![
                        WirePhaseSummary {
                            phase: 3,
                            count: 8,
                            sum_us: 400,
                            max_us: 70,
                            p50_us: 31,
                            p95_us: 63,
                            p99_us: 70,
                        },
                        WirePhaseSummary {
                            phase: 4,
                            count: 8,
                            sum_us: 800,
                            max_us: 130,
                            p50_us: 127,
                            p95_us: 127,
                            p99_us: 130,
                        },
                    ],
                }],
            },
        });
        round_trip(Frame::GoodbyeOk);
        round_trip(Frame::Explain {
            request_id: 14,
            analyze: true,
            sql: "EXPLAIN ANALYZE SELECT * FROM ITEM WHERE I_ID = 3".into(),
        });
        round_trip(Frame::ExplainReply {
            request_id: 14,
            explain: WireExplain {
                statement: "getItem".into(),
                analyze: true,
                root: 2,
                nodes: vec![
                    WireExplainNode {
                        operator: 0,
                        name: "Scan(ITEM)#0".into(),
                        inputs: vec![],
                        sharing: vec!["getItem".into(), "allItems".into()],
                        activated: true,
                        cycles: 12,
                        tuples: 300,
                        busy_us: 4_500,
                        attributed: vec![
                            WireAttributedCost {
                                statement: "getItem".into(),
                                activations: 8,
                                rows: 8,
                                busy_us: 1_000,
                            },
                            WireAttributedCost {
                                statement: "_idle".into(),
                                activations: 0,
                                rows: 0,
                                busy_us: 200,
                            },
                        ],
                    },
                    WireExplainNode {
                        operator: 2,
                        name: "Sort#2".into(),
                        inputs: vec![0],
                        sharing: vec!["getItem".into()],
                        ..WireExplainNode::default()
                    },
                ],
                text: "statement getItem: query\n  Sort#2 [shared by 1: getItem]\n".into(),
            },
        });
    }

    #[test]
    fn explain_accessors_resolve_nodes_and_costs() {
        let explain = WireExplain {
            statement: "getItem".into(),
            analyze: true,
            root: 1,
            nodes: vec![
                WireExplainNode {
                    operator: 0,
                    name: "Scan(ITEM)#0".into(),
                    sharing: vec!["getItem".into(), "allItems".into()],
                    attributed: vec![WireAttributedCost {
                        statement: "allItems".into(),
                        activations: 2,
                        rows: 400,
                        busy_us: 900,
                    }],
                    ..WireExplainNode::default()
                },
                WireExplainNode {
                    operator: 1,
                    name: "Sort#1".into(),
                    inputs: vec![0],
                    sharing: vec!["getItem".into()],
                    ..WireExplainNode::default()
                },
            ],
            text: String::new(),
        };
        assert_eq!(explain.node(0).unwrap().name, "Scan(ITEM)#0");
        assert!(explain.node(9).is_none());
        assert_eq!(explain.sharing_factor(0), 2);
        assert_eq!(explain.sharing_factor(1), 1);
        assert_eq!(explain.sharing_factor(9), 0);
        let shared: Vec<u32> = explain.shared_nodes().iter().map(|n| n.operator).collect();
        assert_eq!(shared, vec![0]);
        assert_eq!(explain.attributed_busy_us(0, "allItems"), 900);
        assert_eq!(explain.attributed_busy_us(0, "getItem"), 0);
    }

    #[test]
    fn incremental_decoder_handles_partial_and_coalesced_frames() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                client_name: "inc".into(),
            },
            Frame::Ping { request_id: 1 },
            Frame::Query {
                request_id: 2,
                sql: "SELECT * FROM ITEM WHERE I_ID = -5".into(),
            },
            Frame::Goodbye,
        ];
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();

        // Byte-by-byte: every push leaves the decoder either mid-frame or at
        // a boundary, and the frames come out unchanged.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in &wire {
            decoder.push(std::slice::from_ref(b));
            while let Some(frame) = decoder.poll_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
        assert!(!decoder.mid_frame());
        assert_eq!(decoder.buffered(), 0);

        // All at once: multiple frames coalesced into one read.
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        let mut decoded = Vec::new();
        while let Some(frame) = decoder.poll_frame().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);

        // A truncated tail stays buffered as a partial frame.
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire[..wire.len() - 1]);
        let mut decoded = Vec::new();
        while let Some(frame) = decoder.poll_frame().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded.len(), frames.len() - 1);
        assert!(decoder.mid_frame());
        decoder.push(&wire[wire.len() - 1..]);
        assert_eq!(decoder.poll_frame().unwrap().unwrap(), Frame::Goodbye);
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn incremental_decoder_rejects_bad_lengths() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&[0xff, 0xff, 0xff, 0xff]);
        assert!(decoder.poll_frame().is_err());
        let mut decoder = FrameDecoder::new();
        decoder.push(&[0, 0, 0, 0]);
        assert!(decoder.poll_frame().is_err());
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let encoded = Frame::Goodbye.encode();
        let mut cursor = std::io::Cursor::new(encoded[..encoded.len() - 1].to_vec());
        // Goodbye is 1 body byte; truncating it truncates the body.
        assert!(read_frame(&mut cursor).is_err());
        // Garbage length.
        let mut cursor = std::io::Cursor::new(vec![0xff, 0xff, 0xff, 0xff, 0x06]);
        assert!(read_frame(&mut cursor).is_err());
        // Unknown opcode.
        assert!(Frame::decode(&[0x77]).is_err());
        // Trailing bytes.
        assert!(Frame::decode(&[0x06, 0x00]).is_err());
    }

    #[test]
    fn error_codes_round_trip_to_engine_errors() {
        let cases = vec![
            Error::Parse("p".into()),
            Error::UnknownTable("t".into()),
            Error::UnknownColumn("c".into()),
            Error::InvalidParameter("i".into()),
            Error::UnknownStatement("s".into()),
            Error::ConstraintViolation("k".into()),
            Error::EngineShutdown,
            Error::Overloaded("q".into()),
            Error::DeadlineExceeded,
            Error::Recovery("r".into()),
            Error::Io("o".into()),
            Error::Unsupported("u".into()),
        ];
        for error in cases {
            let (code, retryable) = error_to_wire(&error);
            let back = wire_to_error(code, retryable, &format!("{error}"));
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&error)
            );
            assert_eq!(back.is_retryable(), error.is_retryable());
        }
    }
}

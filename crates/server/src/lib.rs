//! # shareddb-server
//!
//! The SharedDB **network frontend**: a multi-threaded TCP server that owns an
//! always-on [`shareddb_core::Engine`] and funnels the statements of many
//! client connections into the engine's admission queue, so that one
//! [`shareddb_core::QueryBatch`] serves many sockets. This is the missing
//! client tier of the paper's architecture (Figure 1): concurrent queries from
//! many clients are admitted, queued while the current batch executes, formed
//! into the next batch at the heartbeat, and answered through the shared
//! global plan's Γ(query_id) router.
//!
//! * [`protocol`] — the length-prefixed binary wire protocol (frame formats,
//!   value encoding, error codes, the incremental [`protocol::FrameDecoder`]).
//! * [`server`] — the single-threaded readiness reactor (epoll on Linux, an
//!   adaptive-parking poll loop elsewhere), admission control and graceful
//!   drain.
//!
//! Servers are started either over a pre-built plan
//! ([`Server::start`], e.g. the TPC-W plan of `shareddb-tpcw`) or directly
//! from a SQL workload ([`Server::start_sql`]), which is compiled into a
//! shared global plan by [`shareddb_sql::compile_workload`]. Ad-hoc SQL
//! received over the wire is auto-parameterised and matched against the
//! compiled statement *types* — queries whose type is not part of the plan are
//! rejected, mirroring the paper's prepared-workload model.

pub mod backend;
pub mod protocol;
mod reactor;
pub mod server;

pub use backend::ClusterBackend;
pub use protocol::{Frame, WireReplicaStats, WireStats, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerStatsSnapshot};

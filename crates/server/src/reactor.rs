//! The single-threaded readiness reactor behind [`crate::server::Server`].
//!
//! One thread owns the listener, every client socket and all protocol state:
//!
//! ```text
//!             ┌───────────────────────── reactor thread ─────────────────────────┐
//!   accept ──▶│ nonblocking sockets ──▶ FrameDecoder ──▶ admission ──▶ engine    │
//!             │        ▲                (partial-frame      (atomic     submit   │
//!             │        │                 buffers)            bound)        │     │
//!             │   epoll/park                                               ▼     │
//!             │        ▲                per-conn reply queue ◀── completion      │
//!             │        │                (submission order)       waker (eventfd) │
//!             │   write queues ◀────────────┘                                    │
//!             └────────────────────────────────────────────────────────────────--┘
//! ```
//!
//! Sockets are nonblocking; readiness comes from `epoll` on Linux (via a tiny
//! `extern "C"` binding — no crates.io dependency, following the `shims/`
//! pattern of linking the platform directly) or from a portable adaptive
//! parking loop everywhere else. Nothing in the reactor blocks on I/O or on
//! the engine:
//!
//! * reads land in a per-connection [`FrameDecoder`] that carries
//!   partial-frame state, so a client that stalls mid-frame costs a buffer,
//!   not a parked thread;
//! * submitted statements park as [`Reply::Pending`] entries in the
//!   connection's reply queue; the engine's completion waker (an
//!   eventfd/condvar wake, not a timed poll) tells the reactor to pump them
//!   out in submission order;
//! * responses drain through a per-connection write queue flushed when the
//!   socket is writable; a connection whose write queue passes the high-water
//!   mark stops being polled for readability (socket-level backpressure)
//!   until the client drains it.
//!
//! An idle server makes **zero** wakeups: with no timers armed the poll call
//! sleeps indefinitely until a socket, the listener, or a waker fires. Timed
//! wakeups exist only while a client is mid-frame (stall timeout) or a drain
//! deadline is armed.

use crate::protocol::{
    self, chunk_flags, error_to_wire, Frame, FrameDecoder, WireAttributedCost, WireExplain,
    WireExplainNode, WireOperatorStats, WirePhaseSummary, WireReplicaStats, WireStatementPhases,
    WireStats, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::server::Shared;
use shareddb_cluster::ClusterHandle;
use shareddb_common::{DataType, Error, Value};
use shareddb_core::stats::{OperatorStatsSnapshot, StatementPhaseSnapshot};
use shareddb_core::{explain_statement, render_explain_text, AnalyzeData};
use shareddb_core::{Phase, QueryOutcome, SubmitOptions, WriteFence};
use shareddb_sql::compile::{bind_adhoc, canonicalize, parse_explain};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll token of the TCP listener.
const LISTENER_TOKEN: u64 = 0;
/// Poll token of the wakeup channel (eventfd / condvar).
const WAKE_TOKEN: u64 = 1;
/// First token handed to a client connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Stop reading from a connection whose un-flushed response bytes exceed
/// this; reading resumes once the client drains its socket.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// A client that started a frame but stalls for this long is dropped — it
/// would otherwise pin its connection state (and delay shutdown) forever.
pub(crate) const STALLED_FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// HTTP requests (the `/metrics` scrape path) larger than this are rejected
/// with `400 Bad Request` — scrape requests are a handful of header lines.
const MAX_HTTP_REQUEST: usize = 8 * 1024;

// ---------------------------------------------------------------------------
// Poller abstraction
// ---------------------------------------------------------------------------

/// What a connection wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup / socket error: the connection is beyond saving.
    pub closed: bool,
}

/// Readiness source: epoll on Linux, adaptive-parking scan elsewhere.
///
/// `progressed` on [`Poller::poll`] reports whether the previous reactor
/// iteration did useful work — the scan poller uses it to adapt its parking
/// interval; epoll ignores it.
pub(crate) trait Poller: Send {
    fn register_listener(&mut self, listener: &TcpListener) -> std::io::Result<()>;
    fn deregister_listener(&mut self, listener: &TcpListener);
    fn register_conn(
        &mut self,
        stream: &TcpStream,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()>;
    fn update_conn(&mut self, stream: &TcpStream, token: u64, interest: Interest);
    fn deregister_conn(&mut self, stream: &TcpStream, token: u64);
    /// A handle other threads use to interrupt a sleeping [`Poller::poll`].
    fn waker(&self) -> Arc<dyn Fn() + Send + Sync>;
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>, progressed: bool);
}

// ---------------------------------------------------------------------------
// Linux epoll poller (direct syscall binding, no external crates)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal libc surface for epoll + eventfd. The workspace has no
    //! crates.io access, so — like the `shims/` crates — we bind the platform
    //! directly: these symbols live in the libc every Rust binary already
    //! links.

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
}

/// An owned eventfd shared between the poller and the wakers it hands out;
/// the fd stays open until the last waker is dropped, so a late wake can
/// never hit a recycled descriptor.
#[cfg(target_os = "linux")]
struct EventFd(i32);

#[cfg(target_os = "linux")]
impl EventFd {
    fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe {
            let _ = sys::write(self.0, one.as_ptr(), one.len());
        }
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            let _ = sys::read(self.0, buf.as_mut_ptr(), buf.len());
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.0);
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) struct EpollPoller {
    epfd: i32,
    wake: Arc<EventFd>,
    events: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub(crate) fn new() -> std::io::Result<EpollPoller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let wakefd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = std::io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        let poller = EpollPoller {
            epfd,
            wake: Arc::new(EventFd(wakefd)),
            events: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        };
        poller.ctl(sys::EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, sys::EPOLLIN)?;
        Ok(poller)
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register_listener(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.ctl(
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            LISTENER_TOKEN,
            sys::EPOLLIN,
        )
    }

    fn deregister_listener(&mut self, listener: &TcpListener) {
        use std::os::unix::io::AsRawFd;
        let _ = self.ctl(sys::EPOLL_CTL_DEL, listener.as_raw_fd(), 0, 0);
    }

    fn register_conn(
        &mut self,
        stream: &TcpStream,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.ctl(
            sys::EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            token,
            Self::interest_bits(interest),
        )
    }

    fn update_conn(&mut self, stream: &TcpStream, token: u64, interest: Interest) {
        use std::os::unix::io::AsRawFd;
        let _ = self.ctl(
            sys::EPOLL_CTL_MOD,
            stream.as_raw_fd(),
            token,
            Self::interest_bits(interest),
        );
    }

    fn deregister_conn(&mut self, stream: &TcpStream, token: u64) {
        use std::os::unix::io::AsRawFd;
        let _ = self.ctl(sys::EPOLL_CTL_DEL, stream.as_raw_fd(), token, 0);
    }

    fn waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let wake = Arc::clone(&self.wake);
        Arc::new(move || wake.wake())
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>, _progressed: bool) {
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs deadline doesn't busy-spin at timeout 0.
            Some(t) => t.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
            None => -1,
        };
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                self.events.len() as i32,
                timeout_ms,
            )
        };
        if n <= 0 {
            return; // timeout or EINTR
        }
        for ev in &self.events[..n as usize] {
            let token = { ev.data };
            let bits = { ev.events };
            if token == WAKE_TOKEN {
                self.wake.drain();
                continue;
            }
            events.push(Event {
                token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: adaptive-parking scan poller
// ---------------------------------------------------------------------------

/// Minimum park between scan sweeps while work keeps arriving.
const SCAN_PARK_MIN: Duration = Duration::from_micros(50);
/// Maximum park once the server has gone idle.
const SCAN_PARK_MAX: Duration = Duration::from_millis(25);

/// The portable poller: no readiness syscall at all. Every sweep reports all
/// registered sockets as ready per their interest and lets the reactor's
/// nonblocking reads/writes discover the truth (`WouldBlock` is cheap). The
/// park between sweeps adapts — 50µs while progressing, backing off to 25ms
/// at idle — and wakers (completions, shutdown) interrupt the park through a
/// condvar, so latency stays bounded without a hot spin.
pub(crate) struct ScanPoller {
    signal: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    interests: HashMap<u64, Interest>,
    listener_registered: bool,
    park: Duration,
}

impl ScanPoller {
    pub(crate) fn new() -> ScanPoller {
        ScanPoller {
            signal: Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())),
            interests: HashMap::new(),
            listener_registered: false,
            park: SCAN_PARK_MIN,
        }
    }
}

impl Poller for ScanPoller {
    fn register_listener(&mut self, _listener: &TcpListener) -> std::io::Result<()> {
        self.listener_registered = true;
        Ok(())
    }

    fn deregister_listener(&mut self, _listener: &TcpListener) {
        self.listener_registered = false;
    }

    fn register_conn(
        &mut self,
        _stream: &TcpStream,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        self.interests.insert(token, interest);
        Ok(())
    }

    fn update_conn(&mut self, _stream: &TcpStream, token: u64, interest: Interest) {
        self.interests.insert(token, interest);
    }

    fn deregister_conn(&mut self, _stream: &TcpStream, token: u64) {
        self.interests.remove(&token);
    }

    fn waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let signal = Arc::clone(&self.signal);
        Arc::new(move || {
            let (lock, cv) = &*signal;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        })
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>, progressed: bool) {
        self.park = if progressed {
            SCAN_PARK_MIN
        } else {
            (self.park * 2).min(SCAN_PARK_MAX)
        };
        let park = match timeout {
            Some(t) => t.min(self.park),
            None => self.park,
        };
        {
            let (lock, cv) = &*self.signal;
            let mut woken = lock.lock().unwrap_or_else(|e| e.into_inner());
            if !*woken {
                let (guard, _) = cv
                    .wait_timeout(woken, park)
                    .unwrap_or_else(|e| e.into_inner());
                woken = guard;
            }
            *woken = false;
        }
        if self.listener_registered {
            events.push(Event {
                token: LISTENER_TOKEN,
                readable: true,
                writable: false,
                closed: false,
            });
        }
        for (&token, &interest) in &self.interests {
            if interest.readable || interest.writable {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Completion queue: engine → reactor
// ---------------------------------------------------------------------------

/// Connections whose statements completed since the reactor last looked.
/// Engine completion wakers push here from the coordinator thread and then
/// fire the poller's waker.
pub(crate) struct CompletionQueue {
    tokens: std::sync::Mutex<Vec<u64>>,
    wake: Arc<dyn Fn() + Send + Sync>,
}

impl CompletionQueue {
    fn notify(&self, token: u64) {
        self.tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(token);
        (self.wake)();
    }

    fn drain(&self, into: &mut Vec<u64>) {
        let mut tokens = self.tokens.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut tokens);
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

/// One entry of a connection's ordered reply queue.
enum Reply {
    /// Already-encoded frames, ready to move to the write queue.
    Ready(Vec<u8>),
    /// A submitted statement; its outcome is pumped out (in submission order)
    /// when the engine's completion waker fires. Fanned-out statements hold
    /// one sub-handle per replica and complete when the last partition does.
    Pending {
        request_id: u64,
        handle: ClusterHandle,
        /// Statement registry index, for the Flush-phase histogram.
        statement: usize,
    },
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Replies in submission order; `Pending` entries park here until the
    /// engine completes them.
    replies: VecDeque<Reply>,
    /// Number of `Reply::Pending` entries (the per-session in-flight count).
    inflight: usize,
    /// Encoded response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    greeted: bool,
    /// The connection spoke HTTP instead of the binary protocol (a metrics
    /// scrape): bytes are parsed as one HTTP request, answered, then closed.
    http: bool,
    /// Cumulative bytes flushed to the socket (Flush-phase bookkeeping).
    flushed: u64,
    /// Statement replies in the write queue, not yet fully flushed: the
    /// cumulative-offset watermark at which each is on the wire, when its
    /// outcome became ready, and its statement index.
    pending_flush: VecDeque<(u64, Instant, usize)>,
    /// No more frames will be read (EOF, Goodbye, violation, or drain).
    read_closed: bool,
    /// When the first byte of a partial frame arrived (stall timeout).
    frame_started: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Wakes the reactor when one of this connection's statements completes.
    waker: Arc<dyn Fn() + Send + Sync>,
    /// Read-your-writes session fence: the latest update this session
    /// submitted. Subsequent reads carry it as
    /// [`SubmitOptions::read_after`], so whichever replica they land on
    /// defers them until that write's group commit is visible.
    last_write: Option<Arc<WriteFence>>,
    /// Unrecoverable socket or protocol failure: drop without flushing.
    dead: bool,
}

impl Conn {
    fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn push_out(&mut self, bytes: &[u8]) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 64 * 1024 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// The interest this connection wants given its current state.
    fn wanted_interest(&self, draining: bool) -> Interest {
        Interest {
            readable: !self.read_closed && !draining && self.out_len() < WRITE_HIGH_WATER,
            writable: self.out_len() > 0,
        }
    }

    /// True once everything owed to the client has been flushed and the
    /// connection has no reason to stay open.
    fn finished(&self, draining: bool) -> bool {
        self.dead
            || (self.replies.is_empty() && self.out_len() == 0 && (self.read_closed || draining))
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Box<dyn Poller>,
    conns: HashMap<u64, Conn>,
    completions: Arc<CompletionQueue>,
    next_token: u64,
    /// Set when a drain begins: the hard deadline after which surviving
    /// connections are force-closed.
    drain_deadline: Option<Instant>,
    /// Connections currently holding a partial frame. Gates the stall-timer
    /// scans so the steady state never walks the whole connection map.
    mid_frame_conns: usize,
    /// Reused buffers.
    events: Vec<Event>,
    completed: Vec<u64>,
    scratch: Box<[u8]>,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<Shared>,
        listener: TcpListener,
        poller: Box<dyn Poller>,
    ) -> Reactor {
        let wake = poller.waker();
        Reactor {
            shared,
            listener,
            poller,
            conns: HashMap::new(),
            completions: Arc::new(CompletionQueue {
                tokens: std::sync::Mutex::new(Vec::new()),
                wake,
            }),
            next_token: FIRST_CONN_TOKEN,
            drain_deadline: None,
            mid_frame_conns: 0,
            events: Vec::new(),
            completed: Vec::new(),
            scratch: vec![0u8; 64 * 1024].into_boxed_slice(),
        }
    }

    pub(crate) fn run(mut self) {
        if self.poller.register_listener(&self.listener).is_err() {
            // Without a registered listener the server can never accept;
            // treat as fatal and drain out.
            self.begin_drain();
        }
        let mut progressed = true;
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) && self.drain_deadline.is_none() {
                self.begin_drain();
                progressed = true;
            }

            // Engine completions since the last sweep.
            self.completed.clear();
            let mut completed = std::mem::take(&mut self.completed);
            self.completions.drain(&mut completed);
            for &token in &completed {
                progressed = true;
                self.pump_and_flush(token);
                self.maybe_reap(token);
            }
            self.completed = completed;

            let now = Instant::now();
            // Stall timers only exist while some client is mid-frame; the
            // counter keeps the steady state free of full-map scans.
            if self.mid_frame_conns > 0 {
                self.expire_stalled(now);
            }
            if self.drain_deadline.is_some() {
                // Drain mode is the one regime where a full sweep is right:
                // every connection is racing the same deadline.
                self.reap_finished();
                if self.conns.is_empty() {
                    break;
                }
                if now >= self.drain_deadline.unwrap() {
                    // Force-close whatever would not drain (e.g. a client
                    // that stopped reading its responses).
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.drop_conn(token);
                    }
                    break;
                }
            }

            let timeout = self.next_timeout(now);
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            self.poller.poll(&mut events, timeout, progressed);
            progressed = false;
            for event in &events {
                match event.token {
                    LISTENER_TOKEN => progressed |= self.accept_ready(),
                    WAKE_TOKEN => {}
                    token => {
                        if event.readable || event.closed {
                            progressed |= self.conn_readable(token);
                        }
                        if event.writable || event.closed {
                            progressed |= self.pump_and_flush(token);
                        }
                        self.maybe_reap(token);
                    }
                }
            }
            self.events = events;
        }
        self.poller.deregister_listener(&self.listener);
        self.shared.notify_drained();
    }

    /// Stop accepting and reading; deliver what is owed, then close.
    fn begin_drain(&mut self) {
        let config_timeout = self.shared.config.drain_timeout;
        // The server-side drain waits `drain_timeout`, then shuts the engine
        // down, which completes every in-flight statement (final batch or
        // shutdown error). The reactor's own deadline sits past that so those
        // final results still reach clients that are reading.
        self.drain_deadline = Some(Instant::now() + config_timeout * 2 + Duration::from_secs(2));
        self.poller.deregister_listener(&self.listener);
        for conn in self.conns.values_mut() {
            // A partially received frame can never complete (we stop
            // reading): discard it rather than waiting out its stall timer.
            conn.decoder.clear();
            conn.frame_started = None;
            conn.read_closed = true;
        }
        self.mid_frame_conns = 0;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.update_interest(token);
        }
    }

    /// Earliest pending timer: stalled-frame timeouts and the drain deadline.
    /// With no mid-frame client and no drain armed there is no timer at all —
    /// the poll sleeps until a socket or a waker fires.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut next: Option<Instant> = self.drain_deadline;
        if self.mid_frame_conns > 0 {
            for conn in self.conns.values() {
                if let Some(started) = conn.frame_started {
                    let deadline = started + STALLED_FRAME_TIMEOUT;
                    next = Some(match next {
                        Some(n) => n.min(deadline),
                        None => deadline,
                    });
                }
            }
        }
        next.map(|deadline| deadline.saturating_duration_since(now))
    }

    fn expire_stalled(&mut self, now: Instant) {
        let stalled: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.frame_started
                    .is_some_and(|started| now.duration_since(started) > STALLED_FRAME_TIMEOUT)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stalled {
            self.drop_conn(token);
        }
    }

    fn reap_finished(&mut self) {
        let draining = self.drain_deadline.is_some();
        let finished: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished(draining))
            .map(|(&t, _)| t)
            .collect();
        for token in finished {
            self.drop_conn(token);
        }
        if draining && self.conns.is_empty() {
            self.shared.notify_drained();
        }
    }

    /// Reaps one connection if it has nothing left to deliver. Steady-state
    /// reaping is per-token (after the event or completion that touched the
    /// connection); only drain mode sweeps the whole map.
    fn maybe_reap(&mut self, token: u64) {
        let draining = self.drain_deadline.is_some();
        if self.conns.get(&token).is_some_and(|c| c.finished(draining)) {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.frame_started.is_some() {
                self.mid_frame_conns -= 1;
            }
            self.poller.deregister_conn(&conn.stream, token);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.shared.sessions_active.fetch_sub(1, Ordering::AcqRel);
        }
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self) -> bool {
        let mut accepted = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted = true;
                    if self.drain_deadline.is_some() {
                        continue; // accepted only to close: we are draining
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let completions = Arc::clone(&self.completions);
                    let waker: Arc<dyn Fn() + Send + Sync> =
                        Arc::new(move || completions.notify(token));
                    let interest = Interest {
                        readable: true,
                        writable: false,
                    };
                    if self.poller.register_conn(&stream, token, interest).is_err() {
                        continue;
                    }
                    self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    self.shared.sessions_active.fetch_add(1, Ordering::AcqRel);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            replies: VecDeque::new(),
                            inflight: 0,
                            out: Vec::new(),
                            out_pos: 0,
                            greeted: false,
                            http: false,
                            flushed: 0,
                            pending_flush: VecDeque::new(),
                            read_closed: false,
                            frame_started: None,
                            interest,
                            waker,
                            last_write: None,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion): yield
                    // briefly so a level-triggered listener doesn't spin.
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            }
        }
        accepted
    }

    // -- read path ---------------------------------------------------------

    fn conn_readable(&mut self, token: u64) -> bool {
        let mut progressed = false;
        // Bounded sweeps keep one firehose client from starving the rest; a
        // level-triggered poller re-reports the remainder immediately.
        for _ in 0..8 {
            let conn = match self.conns.get_mut(&token) {
                Some(c) if !c.read_closed && !c.dead => c,
                _ => break,
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Clean EOF (possibly a half-close: the client may still
                    // be reading its pending responses).
                    conn.read_closed = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    conn.decoder.push(&self.scratch[..n]);
                    // A fresh connection that opens with an ASCII HTTP method
                    // is a metrics scrape, not a protocol peer: those bytes
                    // would otherwise parse as an absurd LE length prefix.
                    if !conn.greeted && !conn.http && looks_like_http(conn.decoder.peek()) {
                        conn.http = true;
                    }
                    let keep_reading = if conn.http {
                        self.process_http(token)
                    } else {
                        self.process_frames(token)
                    };
                    if !keep_reading {
                        break;
                    }
                    let conn = match self.conns.get_mut(&token) {
                        Some(c) => c,
                        None => break,
                    };
                    if conn.out_len() >= WRITE_HIGH_WATER {
                        break; // backpressure: stop reading until drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    progressed = true;
                    break;
                }
            }
        }
        let mid_frame_delta = match self.conns.get_mut(&token) {
            Some(conn) => {
                // Arm or clear the stall timer from what is left in the
                // decoder.
                let was_mid = conn.frame_started.is_some();
                conn.frame_started = if conn.decoder.mid_frame() {
                    Some(conn.frame_started.unwrap_or_else(Instant::now))
                } else {
                    None
                };
                conn.frame_started.is_some() as isize - was_mid as isize
            }
            None => 0,
        };
        self.mid_frame_conns = self
            .mid_frame_conns
            .checked_add_signed(mid_frame_delta)
            .unwrap_or(0);
        self.pump_and_flush(token);
        progressed
    }

    /// Decodes and handles every complete frame in the connection's buffer.
    /// Returns false when the connection stopped accepting frames.
    fn process_frames(&mut self, token: u64) -> bool {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) if !c.read_closed && !c.dead => c,
                _ => return false,
            };
            match conn.decoder.poll_frame() {
                Ok(Some(frame)) => {
                    if !self.handle_frame(token, frame) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(_) => {
                    // The stream can no longer be framed: flush what was
                    // already owed, then close (mirrors the old session
                    // behaviour of dropping on a malformed frame).
                    conn.read_closed = true;
                    conn.decoder.clear();
                    return false;
                }
            }
        }
    }

    // -- HTTP metrics endpoint ---------------------------------------------

    /// Handles a connection in HTTP mode: waits for one complete request
    /// head, answers it, and closes. Returns false once the connection
    /// stopped reading (response queued or fatal).
    fn process_http(&mut self, token: u64) -> bool {
        let conn = match self.conns.get_mut(&token) {
            Some(c) if !c.read_closed && !c.dead => c,
            _ => return false,
        };
        let head_len = match find_header_end(conn.decoder.peek()) {
            Some(len) => len,
            None => {
                if conn.decoder.buffered() > MAX_HTTP_REQUEST {
                    self.shared.http_errors.fetch_add(1, Ordering::Relaxed);
                    let response = http_response(400, "Bad Request", "request too large\n");
                    return self.finish_http(token, response);
                }
                return true; // head still arriving
            }
        };
        let head = conn.decoder.peek()[..head_len].to_vec();
        let request_line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
        let response = match parse_request_line(request_line) {
            Some((method, path)) if method == "GET" || method == "HEAD" => {
                if path == "/metrics" {
                    self.shared.scrapes.fetch_add(1, Ordering::Relaxed);
                    let body = self.shared.metrics_text();
                    let mut r = http_response(200, "OK", &body);
                    if method == "HEAD" {
                        r.truncate(r.len() - body.len());
                    }
                    r
                } else {
                    self.shared.http_errors.fetch_add(1, Ordering::Relaxed);
                    http_response(404, "Not Found", "only /metrics is served here\n")
                }
            }
            Some(_) => {
                self.shared.http_errors.fetch_add(1, Ordering::Relaxed);
                http_response(405, "Method Not Allowed", "use GET /metrics\n")
            }
            None => {
                self.shared.http_errors.fetch_add(1, Ordering::Relaxed);
                http_response(400, "Bad Request", "malformed request line\n")
            }
        };
        self.finish_http(token, response)
    }

    /// Queues the HTTP response and half-closes: the reply flushes through
    /// the normal write path, then the connection is reaped.
    fn finish_http(&mut self, token: u64, response: Vec<u8>) -> bool {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.decoder.clear();
            conn.push_out(&response);
            conn.read_closed = true;
        }
        false
    }

    // -- frame handling (the protocol state machine) -----------------------

    /// Handles one decoded frame. Returns false when the connection stops
    /// reading (goodbye, violation, fatal state).
    fn handle_frame(&mut self, token: u64, frame: Frame) -> bool {
        let greeted = match self.conns.get(&token) {
            Some(c) => c.greeted,
            None => return false,
        };
        // Hello must be the first frame: anything else before a successful
        // handshake is a protocol violation and drops the connection.
        if !greeted && !matches!(frame, Frame::Hello { .. }) {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
            return false;
        }
        match frame {
            Frame::Hello { version, .. } => {
                if version != PROTOCOL_VERSION {
                    // A version mismatch ends the session: continuing to
                    // decode a foreign version's frames with v1 rules would
                    // misparse them.
                    self.enqueue_reply(
                        token,
                        &Frame::Error {
                            request_id: 0,
                            code: protocol::error_codes::UNSUPPORTED,
                            retryable: false,
                            message: format!(
                                "protocol version {version} is not supported (server speaks {PROTOCOL_VERSION})"
                            ),
                        },
                    );
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.read_closed = true;
                    }
                    return false;
                }
                let reply = Frame::HelloOk {
                    version: PROTOCOL_VERSION,
                    server_name: self.shared.config.server_name.clone(),
                    statement_count: self.shared.registry.len() as u32,
                };
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.greeted = true;
                }
                self.enqueue_reply(token, &reply);
                true
            }
            Frame::Prepare { request_id, name } => {
                let reply = match self.shared.registry.get(&name) {
                    Ok((idx, spec)) => Frame::Prepared {
                        request_id,
                        statement_id: idx as u32,
                        param_count: self.shared.param_counts[idx] as u32,
                        is_update: spec.is_update(),
                    },
                    Err(e) => error_frame(request_id, &e),
                };
                self.enqueue_reply(token, &reply);
                true
            }
            Frame::ExecutePrepared {
                request_id,
                statement_id,
                params,
            } => {
                if (statement_id as usize) >= self.shared.registry.len() {
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    let e = Error::UnknownStatement(format!("statement id {statement_id}"));
                    self.enqueue_reply(token, &error_frame(request_id, &e));
                    return true;
                }
                let name = self
                    .shared
                    .registry
                    .by_index(statement_id as usize)
                    .name
                    .clone();
                self.submit(token, request_id, &name, &params);
                true
            }
            Frame::Query { request_id, sql } => {
                // `EXPLAIN [ANALYZE] <stmt>` answers from the live global
                // plan instead of executing: a one-column result set with
                // one row per rendered plan line, so any client that can
                // run ad-hoc SQL can introspect the shared plan.
                if let Some((analyze, rest)) = parse_explain(&sql) {
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    let reply = match self
                        .resolve_explain_target(rest)
                        .and_then(|index| self.build_explain(index, analyze))
                    {
                        Ok(explain) => Frame::ResultChunk {
                            request_id,
                            flags: chunk_flags::FIRST | chunk_flags::LAST,
                            rows_affected: 0,
                            schema: vec![("PLAN".into(), DataType::Text)],
                            rows: explain
                                .text
                                .lines()
                                .map(|line| vec![Value::text(line)])
                                .collect(),
                        },
                        Err(e) => error_frame(request_id, &e),
                    };
                    self.enqueue_reply(token, &reply);
                    return true;
                }
                let resolved = canonicalize(&sql).and_then(|adhoc_template| {
                    match self.shared.adhoc.get(&adhoc_template.canonical) {
                        Some((name, template)) => bind_adhoc(template, &adhoc_template)
                            .map(|params| (name.clone(), params)),
                        None => Err(Error::UnknownStatement(format!(
                            "no registered statement type matches: {}",
                            adhoc_template.canonical
                        ))),
                    }
                });
                match resolved {
                    Ok((name, params)) => self.submit(token, request_id, &name, &params),
                    Err(e) => {
                        self.shared.requests.fetch_add(1, Ordering::Relaxed);
                        self.enqueue_reply(token, &error_frame(request_id, &e));
                    }
                }
                true
            }
            Frame::Stats { request_id } => {
                let engine = self.shared.engine.read().unwrap_or_else(|e| e.into_inner());
                let (engine_stats, queued, replicas, mut cluster) = match engine.as_ref() {
                    Some(e) => {
                        let per_replica = e.replica_stats();
                        let depths = e.queued_per_replica();
                        let phase_stats = e.replica_phase_stats();
                        let operator_stats = e.replica_operator_stats();
                        let replicas = per_replica
                            .iter()
                            .zip(depths)
                            .enumerate()
                            .map(|(i, (stats, queued))| WireReplicaStats {
                                batches: stats.batches,
                                queries: stats.queries,
                                updates: stats.updates,
                                failed: stats.failed,
                                queued: queued as u64,
                                operators: operator_stats
                                    .get(i)
                                    .map(|(wall, ops)| wire_operators(*wall, ops))
                                    .unwrap_or_default(),
                                statements: phase_stats
                                    .get(i)
                                    .map(|s| wire_phases(s))
                                    .unwrap_or_default(),
                            })
                            .collect();
                        (
                            e.stats(),
                            e.queued(),
                            replicas,
                            wire_phases(&e.cluster_phase_stats()),
                        )
                    }
                    None => (Default::default(), 0, Vec::new(), Vec::new()),
                };
                drop(engine);
                // The frontend's Flush phase joins the cluster section: like
                // scatter and merge it happens outside any single replica.
                merge_wire_phases(
                    &mut cluster,
                    wire_phases(&self.shared.flush_phases.snapshot()),
                );
                let reply = Frame::StatsReply {
                    request_id,
                    stats: WireStats {
                        batches: engine_stats.batches,
                        queries: engine_stats.queries,
                        updates: engine_stats.updates,
                        failed: engine_stats.failed,
                        queued: queued as u64,
                        sessions: self.shared.sessions_active.load(Ordering::Relaxed),
                        rejected: self.shared.rejected.load(Ordering::Relaxed),
                        replicas,
                        cluster,
                    },
                };
                self.enqueue_reply(token, &reply);
                true
            }
            Frame::Ping { request_id } => {
                self.enqueue_reply(token, &Frame::Pong { request_id });
                true
            }
            Frame::Explain {
                request_id,
                analyze,
                sql,
            } => {
                // The text may carry its own EXPLAIN [ANALYZE] prefix; the
                // frame flag and the textual ANALYZE OR together.
                let (text_analyze, rest) = parse_explain(&sql).unwrap_or((false, sql.trim()));
                let reply = match self
                    .resolve_explain_target(rest)
                    .and_then(|index| self.build_explain(index, analyze || text_analyze))
                {
                    Ok(explain) => Frame::ExplainReply {
                        request_id,
                        explain,
                    },
                    Err(e) => error_frame(request_id, &e),
                };
                self.enqueue_reply(token, &reply);
                true
            }
            Frame::Goodbye => {
                self.enqueue_reply(token, &Frame::GoodbyeOk);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_closed = true;
                }
                false
            }
            // Server-to-client frames arriving at the server are a protocol
            // violation; drop the connection.
            Frame::HelloOk { .. }
            | Frame::Prepared { .. }
            | Frame::ResultChunk { .. }
            | Frame::Error { .. }
            | Frame::StatsReply { .. }
            | Frame::GoodbyeOk
            | Frame::Pong { .. }
            | Frame::ExplainReply { .. } => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.dead = true;
                }
                false
            }
        }
    }

    /// Resolves EXPLAIN's target — a registered statement name, or ad-hoc
    /// SQL matched by auto-parameterisation — to its registry index.
    fn resolve_explain_target(&self, text: &str) -> Result<usize, Error> {
        let text = text.trim().trim_end_matches(';').trim();
        if text.is_empty() {
            return Err(Error::Parse(
                "EXPLAIN requires a statement name or SQL text".into(),
            ));
        }
        let bare_name = text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if bare_name {
            return self.shared.registry.get(text).map(|(index, _)| index);
        }
        let template = canonicalize(text)?;
        match self.shared.adhoc.get(&template.canonical) {
            Some((name, _)) => self.shared.registry.get(name).map(|(index, _)| index),
            None => Err(Error::UnknownStatement(format!(
                "no registered statement type matches: {}",
                template.canonical
            ))),
        }
    }

    /// Builds the [`WireExplain`] payload for one statement type: the
    /// annotated subtree, and — when `analyze` — per-operator counters
    /// summed over replicas plus the cluster-merged cost attribution.
    fn build_explain(&self, index: usize, analyze: bool) -> Result<WireExplain, Error> {
        let engine = self.shared.engine.read().unwrap_or_else(|e| e.into_inner());
        let backend = engine.as_ref().ok_or(Error::EngineShutdown)?;
        let plan = backend.plan();
        let registry = backend.registry();
        let data = if analyze {
            let mut wall = Duration::ZERO;
            let mut operators: Vec<OperatorStatsSnapshot> = plan
                .nodes()
                .iter()
                .map(|node| OperatorStatsSnapshot {
                    name: node.name.clone(),
                    ..OperatorStatsSnapshot::default()
                })
                .collect();
            for (replica_wall, ops) in backend.replica_operator_stats() {
                wall = wall.max(replica_wall);
                for (total, snap) in operators.iter_mut().zip(ops) {
                    total.cycles += snap.cycles;
                    total.active_cycles += snap.active_cycles;
                    total.tuples_out += snap.tuples_out;
                    total.busy += snap.busy;
                }
            }
            Some(AnalyzeData {
                operators,
                attribution: backend.attribution_stats(),
                wall,
            })
        } else {
            None
        };
        let tree = explain_statement(plan, registry, index);
        let text = render_explain_text(plan, registry, index, data.as_ref());
        let nodes = tree
            .nodes
            .iter()
            .map(|node| {
                let (cycles, tuples, busy_us, attributed) = match &data {
                    Some(data) => {
                        let op = &data.operators[node.id];
                        let attributed = data
                            .attribution
                            .iter()
                            .filter(|e| e.operator == node.name)
                            .map(|e| WireAttributedCost {
                                statement: e.statement.clone(),
                                activations: e.activations,
                                rows: e.rows,
                                busy_us: e.busy.as_micros() as u64,
                            })
                            .collect();
                        (
                            op.cycles,
                            op.tuples_out,
                            op.busy.as_micros() as u64,
                            attributed,
                        )
                    }
                    None => (0, 0, 0, Vec::new()),
                };
                WireExplainNode {
                    operator: node.id as u32,
                    name: node.name.clone(),
                    inputs: node.inputs.iter().map(|&i| i as u32).collect(),
                    sharing: node.sharing.clone(),
                    activated: node.activated,
                    cycles,
                    tuples,
                    busy_us,
                    attributed,
                }
            })
            .collect();
        Ok(WireExplain {
            statement: tree.statement,
            analyze,
            root: tree.root.map(|r| r as u32).unwrap_or(u32::MAX),
            nodes,
            text,
        })
    }

    /// Admission control + submission of one statement.
    fn submit(
        &mut self,
        token: u64,
        request_id: u64,
        statement: &str,
        params: &[shareddb_common::Value],
    ) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.enqueue_reply(token, &error_frame(request_id, &Error::EngineShutdown));
            return;
        }
        let (inflight, waker, last_write) = match self.conns.get(&token) {
            Some(c) => (c.inflight, Arc::clone(&c.waker), c.last_write.clone()),
            None => return,
        };
        // Per-session in-flight cap: a pipelining client beyond its budget is
        // rejected (retryably) rather than throttled, so its already-admitted
        // work keeps flowing.
        if inflight >= self.shared.config.max_inflight_per_session {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            let e = Error::Overloaded(format!(
                "session in-flight limit of {} reached",
                self.shared.config.max_inflight_per_session
            ));
            self.enqueue_reply(token, &error_frame(request_id, &e));
            return;
        }
        // Read-your-writes: an update gets a fresh session fence (remembered
        // on success), a query carries the session's latest fence so any
        // replica it routes to waits for that write's commit to be visible.
        let is_update = self
            .shared
            .registry
            .get(statement)
            .map(|(_, spec)| spec.is_update())
            .unwrap_or(false);
        let write_fence = is_update.then(|| Arc::new(WriteFence::new()));
        let guard = self.shared.engine.read().unwrap_or_else(|e| e.into_inner());
        // Global queue-depth backpressure: enforced inside the engine under
        // the admission-queue lock, so concurrent sessions cannot overshoot
        // the bound (the old check-then-enqueue TOCTOU is gone).
        let outcome = match guard.as_ref() {
            Some(engine) => engine.submit(
                statement,
                params,
                SubmitOptions {
                    max_queue_depth: Some(self.shared.config.max_queue_depth),
                    completion_waker: Some(waker),
                    write_fence: write_fence.clone(),
                    read_after: if is_update { None } else { last_write },
                    ..SubmitOptions::default()
                },
            ),
            None => Err(Error::EngineShutdown),
        };
        drop(guard);
        match outcome {
            Ok(handle) => {
                let statement_index = self
                    .shared
                    .registry
                    .get(statement)
                    .map(|(idx, _)| idx)
                    .unwrap_or(usize::MAX);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                    if let Some(fence) = write_fence {
                        conn.last_write = Some(fence);
                    }
                    conn.replies.push_back(Reply::Pending {
                        request_id,
                        handle,
                        statement: statement_index,
                    });
                }
            }
            Err(e) => {
                if matches!(e, Error::Overloaded(_)) {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                }
                self.enqueue_reply(token, &error_frame(request_id, &e));
            }
        }
    }

    // -- write path --------------------------------------------------------

    /// Appends a server frame to the connection's ordered reply queue.
    fn enqueue_reply(&mut self, token: u64, frame: &Frame) {
        let bytes = frame.encode();
        if let Some(conn) = self.conns.get_mut(&token) {
            if bytes.len() - 4 > MAX_FRAME_LEN {
                conn.dead = true; // would desynchronise the stream
                return;
            }
            match conn.replies.back_mut() {
                // Coalesce consecutive ready frames into one buffer.
                Some(Reply::Ready(tail)) => tail.extend_from_slice(&bytes),
                _ => conn.replies.push_back(Reply::Ready(bytes)),
            }
        }
    }

    /// Moves completed replies (in submission order) into the write queue and
    /// flushes as much as the socket accepts. Pump and flush alternate until
    /// neither makes progress: a flush that drops the write queue below the
    /// high-water mark re-opens the pump, so a completed reply can never be
    /// stranded behind a consumed wakeup.
    fn pump_and_flush(&mut self, token: u64) -> bool {
        let conn = match self.conns.get_mut(&token) {
            Some(c) if !c.dead => c,
            _ => return false,
        };
        let mut progressed = false;
        loop {
            let mut round = false;
            // Pump: ready bytes move straight out; pending statements only
            // once the engine has delivered their outcome — never out of
            // order.
            while conn.out_len() < WRITE_HIGH_WATER {
                match conn.replies.front_mut() {
                    None => break,
                    Some(Reply::Ready(bytes)) => {
                        let bytes = std::mem::take(bytes);
                        conn.push_out(&bytes);
                        conn.replies.pop_front();
                        round = true;
                    }
                    Some(Reply::Pending {
                        request_id,
                        handle,
                        statement,
                    }) => {
                        let request_id = *request_id;
                        let statement = *statement;
                        match handle.try_wait() {
                            None => break,
                            Some(outcome) => {
                                conn.inflight -= 1;
                                conn.replies.pop_front();
                                round = true;
                                let ready_at = Instant::now();
                                let mut bytes = Vec::new();
                                let ok = match outcome {
                                    Ok(outcome) => encode_outcome(
                                        &mut bytes,
                                        request_id,
                                        &outcome,
                                        self.shared.config.chunk_rows,
                                    ),
                                    Err(e) => {
                                        bytes = error_frame(request_id, &e).encode();
                                        true
                                    }
                                };
                                if !ok {
                                    conn.dead = true;
                                    break;
                                }
                                conn.push_out(&bytes);
                                // Flush phase: outcome ready → last byte of
                                // this reply accepted by the socket.
                                let watermark = conn.flushed + conn.out_len() as u64;
                                conn.pending_flush
                                    .push_back((watermark, ready_at, statement));
                            }
                        }
                    }
                }
            }
            // Flush.
            while conn.out_len() > 0 {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.flushed += n as u64;
                        round = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            progressed |= round;
            if !round || conn.dead {
                break;
            }
        }
        // Every reply whose last byte the socket accepted has flushed:
        // record its Flush-phase latency (outcome ready → on the wire).
        while conn
            .pending_flush
            .front()
            .is_some_and(|&(watermark, _, _)| watermark <= conn.flushed)
        {
            let (_, ready_at, statement) = conn.pending_flush.pop_front().unwrap();
            self.shared
                .flush_phases
                .record(statement, Phase::Flush, ready_at.elapsed());
        }
        self.update_interest(token);
        progressed
    }

    fn update_interest(&mut self, token: u64) {
        let draining = self.drain_deadline.is_some();
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.dead {
                return;
            }
            let wanted = conn.wanted_interest(draining);
            if wanted != conn.interest {
                conn.interest = wanted;
                self.poller.update_conn(&conn.stream, token, wanted);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

/// Converts per-operator counters to their fixed-point wire form.
fn wire_operators(wall: Duration, ops: &[OperatorStatsSnapshot]) -> Vec<WireOperatorStats> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| WireOperatorStats {
            operator: i as u32,
            busy_ppm: (op.busy_fraction(wall) * 1_000_000.0).round() as u32,
            tuples_per_cycle_milli: (op.tuples_per_active_cycle() * 1000.0).round() as u64,
            cycles: op.cycles,
            tuples: op.tuples_out,
        })
        .collect()
}

/// Converts per-statement phase snapshots to their wire form, keeping only
/// phases that recorded at least one duration.
fn wire_phases(statements: &[StatementPhaseSnapshot]) -> Vec<WireStatementPhases> {
    statements
        .iter()
        .map(|snap| WireStatementPhases {
            statement: snap.statement.clone(),
            phases: Phase::ALL
                .iter()
                .filter_map(|&phase| {
                    let h = snap.phase(phase);
                    if h.is_empty() {
                        return None;
                    }
                    Some(WirePhaseSummary {
                        phase: phase as u8,
                        count: h.count,
                        sum_us: h.sum_us,
                        max_us: h.max_us,
                        p50_us: h.percentile_us(0.50),
                        p95_us: h.percentile_us(0.95),
                        p99_us: h.percentile_us(0.99),
                    })
                })
                .collect(),
        })
        .collect()
}

/// Folds `extra` into `into` by statement name (phases concatenate — the
/// sources record disjoint phase sets).
fn merge_wire_phases(into: &mut Vec<WireStatementPhases>, extra: Vec<WireStatementPhases>) {
    for stmt in extra {
        match into.iter_mut().find(|s| s.statement == stmt.statement) {
            Some(existing) => existing.phases.extend(stmt.phases),
            None => into.push(stmt),
        }
    }
}

/// True when a fresh connection's first bytes spell an HTTP method — the
/// binary protocol's first frame is a length-prefixed Hello, whose little-
/// endian length prefix can never be printable ASCII of this shape.
fn looks_like_http(bytes: &[u8]) -> bool {
    const METHODS: [&[u8]; 7] = [
        b"GET ", b"HEAD", b"POST", b"PUT ", b"DELE", b"OPTI", b"PATC",
    ];
    if bytes.len() < 4 {
        return false;
    }
    METHODS.iter().any(|m| bytes.starts_with(m))
}

/// Offset just past the `\r\n\r\n` terminating the request head, if present.
fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Parses `METHOD /path HTTP/1.x` into (method, path). `None` is malformed.
fn parse_request_line(line: &[u8]) -> Option<(String, String)> {
    let line = std::str::from_utf8(line).ok()?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !path.starts_with('/') || !version.starts_with("HTTP/") {
        return None;
    }
    Some((method.to_string(), path.to_string()))
}

/// Builds a minimal `Connection: close` HTTP/1.1 response.
fn http_response(status: u16, reason: &str, body: &str) -> Vec<u8> {
    let content_type = if status == 200 {
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn error_frame(request_id: u64, error: &Error) -> Frame {
    let (code, retryable) = error_to_wire(error);
    Frame::Error {
        request_id,
        code,
        retryable,
        message: error.to_string(),
    }
}

/// Encodes a statement outcome as its response frames. Returns false when a
/// frame would exceed the protocol limit (the connection must be dropped).
fn encode_outcome(
    buf: &mut Vec<u8>,
    request_id: u64,
    outcome: &QueryOutcome,
    chunk_rows: usize,
) -> bool {
    match outcome {
        QueryOutcome::Updated { rows_affected } => {
            let frame = Frame::ResultChunk {
                request_id,
                flags: chunk_flags::FIRST | chunk_flags::LAST | chunk_flags::UPDATE,
                rows_affected: *rows_affected as u64,
                schema: vec![],
                rows: vec![],
            };
            append_frame(buf, &frame)
        }
        QueryOutcome::Rows(result) => {
            let schema: Vec<(String, shareddb_common::DataType)> = result
                .schema
                .columns()
                .iter()
                .map(|c| (c.qualified_name(), c.data_type))
                .collect();
            let chunk_rows = chunk_rows.max(1);
            let n_chunks = result.rows.len().div_ceil(chunk_rows).max(1);
            for (i, chunk) in result
                .rows
                .chunks(chunk_rows)
                .chain(std::iter::repeat_n(
                    &[][..],
                    usize::from(result.rows.is_empty()),
                ))
                .enumerate()
            {
                let mut flags = 0u8;
                if i == 0 {
                    flags |= chunk_flags::FIRST;
                }
                if i + 1 == n_chunks {
                    flags |= chunk_flags::LAST;
                }
                let frame = Frame::ResultChunk {
                    request_id,
                    flags,
                    rows_affected: 0,
                    schema: if i == 0 { schema.clone() } else { vec![] },
                    rows: chunk.iter().map(|t| t.values().to_vec()).collect(),
                };
                if !append_frame(buf, &frame) {
                    return false;
                }
            }
            true
        }
    }
}

fn append_frame(buf: &mut Vec<u8>, frame: &Frame) -> bool {
    let bytes = frame.encode();
    if bytes.len() - 4 > MAX_FRAME_LEN {
        return false;
    }
    buf.extend_from_slice(&bytes);
    true
}

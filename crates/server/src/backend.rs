//! The engine backend of the network frontend: an engine cluster behind the
//! reactor.
//!
//! The reactor does not talk to a [`shareddb_core::Engine`] directly any
//! more; it submits through a [`ClusterBackend`], which owns a
//! [`ClusterEngine`] of N replicas over one shared catalog (1 by default —
//! exactly the old single-engine behaviour). The backend is what ties the
//! wire protocol's admission control to the cluster:
//!
//! * the queue-depth bound is enforced **per replica**, under each replica's
//!   own admission-queue lock (the cluster router picks the replica first,
//!   then the bound applies to that queue — so N replicas admit up to
//!   N × `max_queue_depth` in total, each queue individually exact);
//! * completion wakers pass through to the cluster: a single-replica
//!   statement wakes the reactor when its outcome is delivered, and a
//!   fanned-out statement wakes it exactly **once**, after the cluster's
//!   merge pool has recombined the partitions — the reactor never runs a
//!   merge on its event loop (the reply pump treats spurious wakes as
//!   no-ops either way);
//! * per-replica statistics feed the `Stats` wire frame.

use shareddb_cluster::{ClusterConfig, ClusterEngine, ClusterHandle};
use shareddb_common::{Result, Value};
use shareddb_core::stats::EngineStatsSnapshot;
use shareddb_core::{EngineConfig, GlobalPlan, StatementRegistry, SubmitOptions};
use shareddb_storage::Catalog;
use std::sync::Arc;

/// The server's engine backend: a cluster of engine replicas.
pub struct ClusterBackend {
    cluster: ClusterEngine,
}

impl ClusterBackend {
    /// Starts the backend (`cluster.replicas` engines over one catalog).
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        cluster_config: ClusterConfig,
    ) -> Result<ClusterBackend> {
        Ok(ClusterBackend {
            cluster: ClusterEngine::start(catalog, plan, registry, engine_config, cluster_config)?,
        })
    }

    /// Submits one statement through the router.
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<ClusterHandle> {
        self.cluster.submit(statement, params, opts)
    }

    /// Number of engine replicas.
    pub fn replicas(&self) -> usize {
        self.cluster.replicas()
    }

    /// Aggregated engine statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.cluster.stats()
    }

    /// Per-replica statistics, in replica order.
    pub fn replica_stats(&self) -> Vec<EngineStatsSnapshot> {
        self.cluster.replica_stats()
    }

    /// Statements queued but not yet batched, summed over replicas.
    pub fn queued(&self) -> usize {
        self.cluster.queued()
    }

    /// Per-replica admission-queue depths.
    pub fn queued_per_replica(&self) -> Vec<usize> {
        self.cluster.queued_per_replica()
    }

    /// Current route of every statement type.
    pub fn routes(&self) -> Vec<(String, shareddb_cluster::Route)> {
        self.cluster.routes()
    }

    /// Stops every replica (completes or cleanly fails queued work).
    pub fn shutdown(&mut self) {
        self.cluster.shutdown();
    }
}

//! The engine backend of the network frontend: an engine cluster behind the
//! reactor.
//!
//! The reactor does not talk to a [`shareddb_core::Engine`] directly any
//! more; it submits through a [`ClusterBackend`], which owns a
//! [`ClusterEngine`] of N replicas over one shared catalog (1 by default —
//! exactly the old single-engine behaviour). The backend is what ties the
//! wire protocol's admission control to the cluster:
//!
//! * the queue-depth bound is enforced **per replica**, under each replica's
//!   own admission-queue lock (the cluster router picks the replica first,
//!   then the bound applies to that queue — so N replicas admit up to
//!   N × `max_queue_depth` in total, each queue individually exact);
//! * completion wakers pass through to the cluster: a single-replica
//!   statement wakes the reactor when its outcome is delivered, and a
//!   fanned-out statement wakes it exactly **once**, after the cluster's
//!   merge pool has recombined the partitions — the reactor never runs a
//!   merge on its event loop (the reply pump treats spurious wakes as
//!   no-ops either way);
//! * per-replica statistics feed the `Stats` wire frame.

use shareddb_cluster::{ClusterConfig, ClusterEngine, ClusterHandle};
use shareddb_common::{Result, Value};
use shareddb_core::stats::{
    AttributionEntry, EngineStatsSnapshot, OperatorStatsSnapshot, SegmentStatsSnapshot,
    StatementPhaseSnapshot,
};
use shareddb_core::trace::TraceRecord;
use shareddb_core::{EngineConfig, GlobalPlan, SlowQueryRecord, StatementRegistry, SubmitOptions};
use shareddb_storage::Catalog;
use std::sync::Arc;
use std::time::Duration;

/// The server's engine backend: a cluster of engine replicas.
pub struct ClusterBackend {
    cluster: ClusterEngine,
}

impl ClusterBackend {
    /// Starts the backend (`cluster.replicas` engines over one catalog).
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        engine_config: EngineConfig,
        cluster_config: ClusterConfig,
    ) -> Result<ClusterBackend> {
        Ok(ClusterBackend {
            cluster: ClusterEngine::start(catalog, plan, registry, engine_config, cluster_config)?,
        })
    }

    /// Submits one statement through the router.
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<ClusterHandle> {
        self.cluster.submit(statement, params, opts)
    }

    /// Number of engine replicas.
    pub fn replicas(&self) -> usize {
        self.cluster.replicas()
    }

    /// The catalog all replicas share (and with it the WAL and oracle).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.cluster.catalog()
    }

    /// The global plan every replica deploys.
    pub fn plan(&self) -> &GlobalPlan {
        self.cluster.plan()
    }

    /// The statement registry the cluster routes by.
    pub fn registry(&self) -> &StatementRegistry {
        self.cluster.registry()
    }

    /// Aggregated engine statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.cluster.stats()
    }

    /// Per-replica statistics, in replica order.
    pub fn replica_stats(&self) -> Vec<EngineStatsSnapshot> {
        self.cluster.replica_stats()
    }

    /// Statements queued but not yet batched, summed over replicas.
    pub fn queued(&self) -> usize {
        self.cluster.queued()
    }

    /// Per-replica admission-queue depths.
    pub fn queued_per_replica(&self) -> Vec<usize> {
        self.cluster.queued_per_replica()
    }

    /// Per-replica admission-lane depths, `(light, heavy)`.
    pub fn lane_depths_per_replica(&self) -> Vec<(usize, usize)> {
        self.cluster.lane_depths_per_replica()
    }

    /// Per-replica heartbeat interval currently in effect.
    pub fn replica_heartbeats(&self) -> Vec<Duration> {
        self.cluster.replica_heartbeats()
    }

    /// Per-replica adaptive-heartbeat adjustment counts.
    pub fn replica_heartbeat_adjustments(&self) -> Vec<u64> {
        self.cluster.replica_heartbeat_adjustments()
    }

    /// Per-replica, per-statement phase histograms.
    pub fn replica_phase_stats(&self) -> Vec<Vec<StatementPhaseSnapshot>> {
        self.cluster.replica_phase_stats()
    }

    /// Cluster-level scatter/merge phase histograms.
    pub fn cluster_phase_stats(&self) -> Vec<StatementPhaseSnapshot> {
        self.cluster.cluster_phase_stats()
    }

    /// Per-replica operator statistics with each replica's stats-window wall
    /// clock.
    pub fn replica_operator_stats(&self) -> Vec<(Duration, Vec<OperatorStatsSnapshot>)> {
        self.cluster.replica_operator_stats()
    }

    /// Per-replica scan-segment statistics with each replica's stats-window
    /// wall clock (empty inner vectors when `scan_segments == 1`).
    pub fn replica_segment_stats(&self) -> Vec<(Duration, Vec<SegmentStatsSnapshot>)> {
        self.cluster.replica_segment_stats()
    }

    /// Slow-query count and retained offender records, summed over replicas
    /// (each record stamped with its executing replica).
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        self.cluster.slow_queries()
    }

    /// Per-replica per-operator × per-statement-type cost attribution.
    pub fn replica_attribution_stats(&self) -> Vec<Vec<AttributionEntry>> {
        self.cluster.replica_attribution_stats()
    }

    /// Cluster-wide cost attribution, merged by `(operator, statement)` key.
    pub fn attribution_stats(&self) -> Vec<AttributionEntry> {
        self.cluster.attribution_stats()
    }

    /// One replica's batch-lifecycle trace journal.
    pub fn replica_trace(&self, replica: usize) -> Vec<TraceRecord> {
        self.cluster.replica_trace(replica)
    }

    /// Zeroes all statistics across replicas and the cluster phase table.
    pub fn reset_stats(&self) {
        self.cluster.reset_stats();
    }

    /// Current route of every statement type.
    pub fn routes(&self) -> Vec<(String, shareddb_cluster::Route)> {
        self.cluster.routes()
    }

    /// Stops every replica (completes or cleanly fails queued work).
    pub fn shutdown(&mut self) {
        self.cluster.shutdown();
    }
}

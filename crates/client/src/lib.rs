//! # shareddb-client
//!
//! The blocking client library for the SharedDB network frontend
//! (`shareddb-server`): a [`Connection`] speaks the length-prefixed binary
//! wire protocol over TCP, supports **pipelining** (many submitted statements
//! in flight; responses arrive in submission order) and decodes results into
//! typed [`RemoteResultSet`]s.
//!
//! Pipelining is how a single client becomes a *good* SharedDB citizen: all
//! statements submitted within one heartbeat window land in the same
//! [`shareddb_core::QueryBatch`] and are answered by one shared execution.
//!
//! ```no_run
//! use shareddb_client::Connection;
//! use shareddb_common::Value;
//!
//! let mut conn = Connection::connect("127.0.0.1:4869").unwrap();
//! let get_item = conn.prepare("getItem").unwrap();
//! // Submit a pipeline of look-ups, then collect all results.
//! let tickets: Vec<_> = (0..100)
//!     .map(|i| conn.submit(&get_item, &[Value::Int(i)]).unwrap())
//!     .collect();
//! for ticket in tickets {
//!     let outcome = conn.wait(ticket).unwrap();
//!     println!("{} rows", outcome.rows().len());
//! }
//! ```

use shareddb_common::{DataType, Error, Result, Value};
pub use shareddb_core::Phase;
use shareddb_server::protocol::{
    chunk_flags, read_frame, wire_to_error, write_frame, Frame, WirePhaseSummary,
    WireStatementPhases, WireStats, PROTOCOL_VERSION,
};
pub use shareddb_server::protocol::{WireAttributedCost, WireExplain, WireExplainNode};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Metadata of a prepared statement on the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepared {
    /// Server-side statement id.
    pub id: u32,
    /// Statement name.
    pub name: String,
    /// Number of positional parameters.
    pub param_count: usize,
    /// True for INSERT/UPDATE/DELETE.
    pub is_update: bool,
}

/// A decoded query result.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResultSet {
    /// Column names and types.
    pub columns: Vec<(String, DataType)>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl RemoteResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Outcome of one remote statement execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A query with its decoded result set.
    Rows(RemoteResultSet),
    /// An update acknowledgement.
    Updated {
        /// Number of rows inserted / modified / deleted.
        rows_affected: u64,
    },
}

impl Outcome {
    /// The rows of a query outcome (empty for updates).
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            Outcome::Rows(rs) => &rs.rows,
            Outcome::Updated { .. } => &[],
        }
    }

    /// Rows affected by an update (0 for queries).
    pub fn rows_affected(&self) -> u64 {
        match self {
            Outcome::Rows(_) => 0,
            Outcome::Updated { rows_affected } => *rows_affected,
        }
    }
}

/// Handle for one pipelined submission; redeem with [`Connection::wait`] in
/// submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(u64);

/// Typed latency summary of one execution phase, decoded from a v3
/// [`Frame::StatsReply`]: percentiles and extremes as [`Duration`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseLatency {
    /// Durations recorded in this phase.
    pub count: u64,
    /// Mean recorded duration.
    pub mean: Duration,
    /// Exact maximum.
    pub max: Duration,
    /// 50th percentile (histogram-bucket resolution).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl PhaseLatency {
    fn from_wire(summary: &WirePhaseSummary) -> PhaseLatency {
        let mean_us = summary.sum_us.checked_div(summary.count).unwrap_or(0);
        PhaseLatency {
            count: summary.count,
            mean: Duration::from_micros(mean_us),
            max: Duration::from_micros(summary.max_us),
            p50: Duration::from_micros(summary.p50_us),
            p95: Duration::from_micros(summary.p95_us),
            p99: Duration::from_micros(summary.p99_us),
        }
    }
}

fn find_phase(
    statements: &[WireStatementPhases],
    statement: &str,
    phase: Phase,
) -> Option<PhaseLatency> {
    statements
        .iter()
        .find(|s| s.statement == statement)?
        .phases
        .iter()
        .find(|p| p.phase == phase as u8)
        .map(PhaseLatency::from_wire)
}

/// Typed accessors over the phase-tagged latency summaries of a
/// [`WireStats`] snapshot (protocol v3).
pub trait StatsPhases {
    /// One replica's latency summary for `statement` in `phase` (admission,
    /// batch-wait, execute, total), if that phase recorded anything there.
    fn replica_phase(&self, replica: usize, statement: &str, phase: Phase) -> Option<PhaseLatency>;
    /// The cluster-level summary for `statement` in `phase` — the scatter,
    /// merge and reply-flush phases, which happen outside any replica.
    fn cluster_phase(&self, statement: &str, phase: Phase) -> Option<PhaseLatency>;
}

impl StatsPhases for WireStats {
    fn replica_phase(&self, replica: usize, statement: &str, phase: Phase) -> Option<PhaseLatency> {
        find_phase(&self.replicas.get(replica)?.statements, statement, phase)
    }

    fn cluster_phase(&self, statement: &str, phase: Phase) -> Option<PhaseLatency> {
        find_phase(&self.cluster, statement, phase)
    }
}

/// A blocking connection to a SharedDB server.
///
/// Not thread-safe by design (one connection = one session pipeline); open
/// one connection per client thread, or guard a shared one externally.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_request_id: u64,
    /// Request ids awaiting responses, in submission order.
    pending: VecDeque<u64>,
    /// Set when the stream desynchronised (e.g. a deadline expired mid-read);
    /// the connection refuses further use.
    poisoned: bool,
}

impl Connection {
    /// Connects and performs the Hello handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection> {
        Connection::connect_named(addr, "shareddb-client")
    }

    /// Connects with an explicit client name (shown in server diagnostics).
    pub fn connect_named(addr: impl ToSocketAddrs, client_name: &str) -> Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut conn = Connection {
            reader,
            writer,
            next_request_id: 1,
            pending: VecDeque::new(),
            poisoned: false,
        };
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client_name: client_name.into(),
        })?;
        match conn.read()? {
            Frame::HelloOk { .. } => Ok(conn),
            Frame::Error {
                code,
                retryable,
                message,
                ..
            } => Err(wire_to_error(code, retryable, &message)),
            other => Err(Error::Io(format!("unexpected greeting: {other:?}"))),
        }
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::Io(
                "connection is poisoned (a previous deadline expired mid-response)".into(),
            ));
        }
        Ok(())
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame. Any transport failure (closed socket, timeout,
    /// malformed frame) leaves the stream state unknown and poisons the
    /// connection; a well-formed [`Frame::Error`] does not.
    fn read(&mut self) -> Result<Frame> {
        match read_frame(&mut self.reader) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => {
                self.poisoned = true;
                Err(Error::Io("server closed the connection".into()))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn fresh_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    fn check_pipeline_empty(&self, operation: &str) -> Result<()> {
        if !self.pending.is_empty() {
            return Err(Error::InvalidParameter(format!(
                "drain pipelined submissions before {operation} (responses arrive in \
                 submission order; interleaving would desynchronise the connection)"
            )));
        }
        Ok(())
    }

    /// Looks up a registered statement type by name.
    pub fn prepare(&mut self, name: &str) -> Result<Prepared> {
        self.check_poisoned()?;
        self.check_pipeline_empty("prepare")?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::Prepare {
            request_id,
            name: name.into(),
        })?;
        match self.read()? {
            Frame::Prepared {
                statement_id,
                param_count,
                is_update,
                ..
            } => Ok(Prepared {
                id: statement_id,
                name: name.to_string(),
                param_count: param_count as usize,
                is_update,
            }),
            Frame::Error {
                code,
                retryable,
                message,
                ..
            } => Err(wire_to_error(code, retryable, &message)),
            other => Err(Error::Io(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Submits a prepared-statement execution without waiting (pipelining).
    pub fn submit(&mut self, statement: &Prepared, params: &[Value]) -> Result<Ticket> {
        self.check_poisoned()?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::ExecutePrepared {
            request_id,
            statement_id: statement.id,
            params: params.to_vec(),
        })?;
        self.pending.push_back(request_id);
        Ok(Ticket(request_id))
    }

    /// Submits an ad-hoc SQL statement without waiting (pipelining). The
    /// server matches it against the compiled statement types.
    pub fn submit_query(&mut self, sql: &str) -> Result<Ticket> {
        self.check_poisoned()?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::Query {
            request_id,
            sql: sql.into(),
        })?;
        self.pending.push_back(request_id);
        Ok(Ticket(request_id))
    }

    /// Waits for the result of a pipelined submission. Responses arrive in
    /// submission order, so tickets must be redeemed in submission order.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Outcome> {
        self.check_poisoned()?;
        match self.pending.front() {
            Some(&next) if next == ticket.0 => {}
            Some(&next) => {
                return Err(Error::InvalidParameter(format!(
                    "tickets must be redeemed in submission order (next is {next}, got {})",
                    ticket.0
                )))
            }
            None => {
                return Err(Error::InvalidParameter(
                    "no submission is pending for this ticket".into(),
                ))
            }
        }
        let result = self.read_outcome(ticket.0);
        // Transport failures and desyncs set the poison flag inside the read
        // path; a server-reported statement error (even an engine-side I/O
        // error) leaves the stream in sync and the pipeline usable.
        if !self.poisoned {
            self.pending.pop_front();
        }
        result
    }

    fn read_outcome(&mut self, request_id: u64) -> Result<Outcome> {
        let mut columns: Vec<(String, DataType)> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        loop {
            match self.read()? {
                Frame::ResultChunk {
                    request_id: rid,
                    flags,
                    rows_affected,
                    schema,
                    rows: chunk_rows,
                } => {
                    if rid != request_id {
                        self.poisoned = true;
                        return Err(Error::Io(format!(
                            "response for request {rid} while waiting for {request_id}"
                        )));
                    }
                    if flags & chunk_flags::UPDATE != 0 {
                        return Ok(Outcome::Updated { rows_affected });
                    }
                    if flags & chunk_flags::FIRST != 0 {
                        columns = schema;
                    }
                    rows.extend(chunk_rows);
                    if flags & chunk_flags::LAST != 0 {
                        return Ok(Outcome::Rows(RemoteResultSet { columns, rows }));
                    }
                }
                Frame::Error {
                    request_id: rid,
                    code,
                    retryable,
                    message,
                } => {
                    if rid != request_id {
                        self.poisoned = true;
                        return Err(Error::Io(format!(
                            "error for request {rid} while waiting for {request_id}"
                        )));
                    }
                    return Err(wire_to_error(code, retryable, &message));
                }
                other => {
                    self.poisoned = true;
                    return Err(Error::Io(format!("unexpected reply: {other:?}")));
                }
            }
        }
    }

    /// Submits and waits in one call.
    pub fn execute(&mut self, statement: &Prepared, params: &[Value]) -> Result<Outcome> {
        let ticket = self.submit(statement, params)?;
        self.wait(ticket)
    }

    /// Submits and waits, giving up after `deadline`. A timed-out connection
    /// is poisoned (the response may still be in flight) and cannot be
    /// reused.
    pub fn execute_with_deadline(
        &mut self,
        statement: &Prepared,
        params: &[Value],
        deadline: Duration,
    ) -> Result<Outcome> {
        let started = std::time::Instant::now();
        let ticket = self.submit(statement, params)?;
        self.reader
            .get_ref()
            .set_read_timeout(Some(deadline.max(Duration::from_millis(1))))?;
        let result = self.wait(ticket);
        let _ = self.reader.get_ref().set_read_timeout(None);
        match result {
            // The socket timeout is per read(2) call, so a slow multi-chunk
            // response can complete past the deadline; that is still a
            // deadline miss (the stream is in sync, no poisoning needed).
            Ok(_) if started.elapsed() > deadline => Err(Error::DeadlineExceeded),
            // Only an I/O failure *at* the deadline is a timeout; earlier
            // ones are real connection failures and must stay visible.
            Err(Error::Io(_)) if started.elapsed() >= deadline => {
                self.poisoned = true;
                Err(Error::DeadlineExceeded)
            }
            other => other,
        }
    }

    /// Executes an ad-hoc SQL statement.
    pub fn query(&mut self, sql: &str) -> Result<Outcome> {
        let ticket = self.submit_query(sql)?;
        self.wait(ticket)
    }

    /// Keepalive no-op: round-trips a [`Frame::Ping`] without touching the
    /// engine. Useful for long-lived idle connections (liveness probing) and
    /// as the cheapest way to exercise the server's incremental frame
    /// decoder. Requires a drained pipeline, like [`Connection::stats`].
    pub fn ping(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.check_pipeline_empty("ping")?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::Ping { request_id })?;
        match self.read()? {
            Frame::Pong { request_id: rid } if rid == request_id => Ok(()),
            Frame::Error {
                code,
                retryable,
                message,
                ..
            } => Err(wire_to_error(code, retryable, &message)),
            other => Err(Error::Io(format!("unexpected ping reply: {other:?}"))),
        }
    }

    /// Fetches engine + server statistics.
    pub fn stats(&mut self) -> Result<WireStats> {
        self.check_poisoned()?;
        self.check_pipeline_empty("requesting stats")?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::Stats { request_id })?;
        match self.read()? {
            Frame::StatsReply { stats, .. } => Ok(stats),
            Frame::Error {
                code,
                retryable,
                message,
                ..
            } => Err(wire_to_error(code, retryable, &message)),
            other => Err(Error::Io(format!("unexpected reply: {other:?}"))),
        }
    }

    /// EXPLAIN the statement's view of the shared global plan. `text` is a
    /// registered statement name or ad-hoc SQL, with or without a leading
    /// `EXPLAIN [ANALYZE]` prefix; `analyze` additionally requests live
    /// per-operator runtime counters and per-statement-type cost
    /// attribution. Returns the typed [`WireExplain`] payload (the rendered
    /// text plan is in [`WireExplain::text`]).
    pub fn explain(&mut self, text: &str, analyze: bool) -> Result<WireExplain> {
        self.check_poisoned()?;
        self.check_pipeline_empty("requesting explain")?;
        let request_id = self.fresh_request_id();
        self.send(&Frame::Explain {
            request_id,
            analyze,
            sql: text.into(),
        })?;
        match self.read()? {
            Frame::ExplainReply { explain, .. } => Ok(explain),
            Frame::Error {
                code,
                retryable,
                message,
                ..
            } => Err(wire_to_error(code, retryable, &message)),
            other => Err(Error::Io(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Orderly connection termination. Pending pipelined responses are
    /// drained (and discarded) first so the goodbye handshake lines up.
    pub fn close(mut self) -> Result<()> {
        if self.poisoned {
            return Ok(());
        }
        while let Some(&next) = self.pending.front() {
            // Statement-level errors are fine during close; a desynchronised
            // stream (poison) means an orderly goodbye is no longer possible.
            let _ = self.read_outcome(next);
            self.pending.pop_front();
            if self.poisoned {
                return Ok(());
            }
        }
        self.send(&Frame::Goodbye)?;
        match self.read()? {
            Frame::GoodbyeOk => Ok(()),
            other => Err(Error::Io(format!("unexpected goodbye reply: {other:?}"))),
        }
    }
}

//! Minimal in-repo stand-in for the `parking_lot` API, implemented over
//! `std::sync`. The build environment has no network access to crates.io, so
//! the workspace vendors the small slice of the API SharedDB uses: panic-free
//! (poison-ignoring) `Mutex` / `RwLock` guards and a `Condvar` whose
//! `wait`/`wait_for` take the guard by `&mut` reference.

use std::sync;
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar`] can temporarily
/// take it out while waiting and put it back afterwards.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable working on [`MutexGuard`]s by `&mut` reference.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notification_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}

//! Minimal in-repo stand-in for the `crossbeam-channel` API: an unbounded
//! multi-producer **multi-consumer** FIFO channel built on a mutex-protected
//! queue and a condition variable. The build environment has no network access
//! to crates.io, so the workspace vendors the slice of the API SharedDB uses:
//! `unbounded`, clonable `Sender`/`Receiver`, `send`, `recv`, `recv_timeout`
//! and `try_recv` with crossbeam's disconnect semantics (a channel is
//! disconnected when all peers on the other side dropped; a disconnected
//! channel still drains buffered messages).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    signal: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed before a message arrived.
    Timeout,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable: clones compete for messages.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates an unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        signal: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message; fails when every receiver dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.signal.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.signal.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or all senders dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .signal
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a message is available, all senders dropped, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .signal
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = inner.queue.pop_front() {
            return Ok(value);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn drained_after_sender_drop_then_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cloned_receivers_compete() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        let t1 = std::thread::spawn(move || rx1.recv().ok());
        let t2 = std::thread::spawn(move || rx2.recv().ok());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut got = vec![t1.join().unwrap(), t2.join().unwrap()];
        got.sort();
        assert_eq!(got, vec![Some(1), Some(2)]);
    }
}

//! Minimal in-repo stand-in for the `criterion` benchmarking API. The build
//! environment has no network access to crates.io, so the workspace vendors
//! the slice of the API the `benches/` targets use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple — a timed warm-up followed by a fixed
//! wall-clock measurement window whose mean iteration time is printed as
//! `<group>/<id> ... <mean> ns/iter (<iters> iters)`. It reports relative
//! magnitudes well enough to compare shared vs per-query execution; it does
//! not do outlier analysis or statistical testing like real criterion.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warm-up, then a timed window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run at least once, up to ~1/5 of the measurement window.
        let warmup_until = Instant::now() + self.measure_for / 5;
        loop {
            black_box(routine());
            if Instant::now() >= warmup_until {
                break;
            }
        }
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if started.elapsed() >= self.measure_for {
                break;
            }
        }
        self.total = started.elapsed();
        self.iters_done = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measure_for: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's window is wall-clock based, so
    /// the sample count only shortens the measurement window slightly.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Fewer requested samples -> a shorter window, floored at 50 ms.
        let millis = (samples as u64 * 10).clamp(50, 1_000);
        self.measure_for = Duration::from_millis(millis);
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measure_for = window;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            measure_for: self.measure_for,
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `routine` with an explicit input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            measure_for: self.measure_for,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let iters = bencher.iters_done.max(1);
        let mean_ns = bencher.total.as_nanos() as f64 / iters as f64;
        println!(
            "{}/{:<40} {:>14.1} ns/iter ({} iters)",
            self.name, id.label, mean_ns, iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure_for: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("lookups", 128);
        assert_eq!(id.label, "lookups/128");
        assert_eq!(BenchmarkId::from_parameter(5).label, "5");
    }
}

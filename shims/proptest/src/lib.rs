//! Minimal in-repo stand-in for the `proptest` API slice SharedDB's property
//! tests use. The build environment has no network access to crates.io, so
//! the workspace vendors a small randomized-testing runner:
//!
//! * [`Strategy`] — a value generator; implemented for half-open ranges,
//!   tuples of strategies, [`collection::vec`] and [`any`].
//! * [`proptest!`] — expands each `fn name(arg in strategy, ...) { body }`
//!   into a `#[test]` that runs the body for [`ProptestConfig::cases`]
//!   deterministically seeded random cases.
//! * [`prop_assert!`] / [`prop_assert_eq!`] — plain assertion forwarding.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the ordinary assertion message. Failures are reproducible because the
//! per-test RNG is seeded from the test's name (override the whole run's seed
//! mix with `PROPTEST_SHIM_SEED=<u64>`).

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a) plus an optional
    /// environment override, so every test has its own reproducible stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let mix = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: hash ^ mix.rotate_left(17),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Run configuration; only the case count is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases executed per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for any value of a type with a canonical distribution.
pub struct Any<A> {
    _marker: PhantomData<A>,
}

/// Types with a canonical whole-domain distribution.
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with a length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                self.size.generate(rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` forwarding).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` forwarding).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` forwarding).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_shim_rng = $crate::TestRng::for_test(stringify!($name));
            for _ in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_shim_rng);)+
                $body
            }
        }
    )*};
}

/// The proptest entry macro: wraps `fn name(arg in strategy, ...) { body }`
/// items into `#[test]`s that run many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_functions! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_functions! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 5i64..50, u in 0usize..3) {
            prop_assert!((5..50).contains(&v));
            prop_assert!(u < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn vec_strategy_respects_size(items in crate::collection::vec((0u32..10, any::<bool>()), 0..8)) {
            prop_assert!(items.len() < 8);
            for (n, _flag) in items {
                prop_assert!(n < 10);
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Minimal in-repo stand-in for the `rand` API slice SharedDB uses. The build
//! environment has no network access to crates.io, so the workspace vendors a
//! small deterministic PRNG behind the familiar trait names: `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` over half-open ranges, and `rngs::StdRng`.
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — statistically
//! solid for workload generation, *not* cryptographically secure (neither is
//! the real `StdRng` guaranteed to be stable across versions, so benchmark
//! workloads must not depend on a particular stream either way).

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo reduction: bias is negligible for the spans used in
                // workload generation (far below 2^64).
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..100i64);
            assert!((10..100).contains(&v));
            let f = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}

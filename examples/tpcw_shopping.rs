//! Run the TPC-W Shopping mix against SharedDB and both query-at-a-time
//! baselines and print a small comparison table (a miniature of Figure 7).
//!
//! Run with: `cargo run --release --example tpcw_shopping`
//! Environment: `TPCW_ITEMS` (default 1000), `EBS` (default 400),
//! `SECONDS` (default 2).

use shareddb::baseline::EngineProfile;
use shareddb::core::EngineConfig;
use shareddb::tpcw::{
    build_catalog, run_workload, BaselineSystem, DriverConfig, Mix, SharedDbSystem, TpcwScale,
};
use std::sync::Arc;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> shareddb::Result<()> {
    let scale = TpcwScale::with_items(env_usize("TPCW_ITEMS", 1_000));
    let ebs = env_usize("EBS", 400);
    let seconds = env_usize("SECONDS", 2);
    let config = DriverConfig {
        mix: Mix::Shopping,
        emulated_browsers: ebs,
        think_time: Duration::from_millis(500),
        duration: Duration::from_secs(seconds as u64),
        client_threads: 16,
        time_limit_scale: 1.0,
        seed: 99,
    };

    println!(
        "TPC-W Shopping mix, {} items, {} emulated browsers, {}s per system",
        scale.items, ebs, seconds
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "system", "WIPS", "ok", "timeout", "latency(ms)"
    );

    // MySQL-like baseline.
    {
        let catalog = Arc::new(build_catalog(&scale)?);
        let db = BaselineSystem::new(catalog, EngineProfile::Basic, 24);
        let r = run_workload(&db, &scale, &config);
        println!(
            "{:<14} {:>10.1} {:>10} {:>10} {:>12.2}",
            r.system,
            r.wips,
            r.successful,
            r.timed_out,
            r.mean_latency.as_secs_f64() * 1e3
        );
    }
    // SystemX-like baseline.
    {
        let catalog = Arc::new(build_catalog(&scale)?);
        let db = BaselineSystem::new(catalog, EngineProfile::Tuned, 24);
        let r = run_workload(&db, &scale, &config);
        println!(
            "{:<14} {:>10.1} {:>10} {:>10} {:>12.2}",
            r.system,
            r.wips,
            r.successful,
            r.timed_out,
            r.mean_latency.as_secs_f64() * 1e3
        );
    }
    // SharedDB.
    {
        let catalog = Arc::new(build_catalog(&scale)?);
        let db = SharedDbSystem::new(catalog, EngineConfig::with_cores(24))?;
        let r = run_workload(&db, &scale, &config);
        println!(
            "{:<14} {:>10.1} {:>10} {:>10} {:>12.2}",
            r.system,
            r.wips,
            r.successful,
            r.timed_out,
            r.mean_latency.as_secs_f64() * 1e3
        );
        let stats = db.engine().stats();
        println!(
            "\nSharedDB internals: {} batches, {} queries, {} updates, p99 latency {:?}",
            stats.batches, stats.queries, stats.updates, stats.p99_latency
        );
    }
    Ok(())
}

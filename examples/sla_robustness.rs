//! Robustness under mixed light/heavy load (a miniature of Figure 11 and of
//! the paper's SLA argument, Section 3.5).
//!
//! A steady stream of light point queries competes with an increasing number
//! of heavy best-seller analyses. The example prints, per heavy-load level,
//! how many light queries still met a fixed latency SLA on SharedDB versus
//! the query-at-a-time baseline.
//!
//! Run with: `cargo run --release --example sla_robustness`

use shareddb::baseline::EngineProfile;
use shareddb::common::Value;
use shareddb::core::EngineConfig;
use shareddb::tpcw::{
    build_catalog, BaselineSystem, SharedDbSystem, TpcwDatabase, TpcwScale, SUBJECTS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run_level(db: &dyn TpcwDatabase, scale: &TpcwScale, heavy_clients: usize) -> (u64, u64) {
    let duration = Duration::from_millis(800);
    let sla = Duration::from_millis(250);
    let met = AtomicU64::new(0);
    let missed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Light clients: point queries with an SLA.
        for t in 0..4usize {
            let met = &met;
            let missed = &missed;
            scope.spawn(move || {
                let mut i = t as i64;
                while start.elapsed() < duration {
                    let begun = Instant::now();
                    let ok = db
                        .execute("getBook", &[Value::Int(i % scale.items as i64)], sla)
                        .is_ok();
                    if ok && begun.elapsed() <= sla {
                        met.fetch_add(1, Ordering::Relaxed);
                    } else {
                        missed.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 7;
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Heavy clients: best-seller analyses, as fast as they can.
        for t in 0..heavy_clients {
            scope.spawn(move || {
                let mut i = t;
                while start.elapsed() < duration {
                    let params = [
                        Value::text(SUBJECTS[i % SUBJECTS.len()]),
                        Value::Int((scale.orders as i64 - 500).max(0)),
                    ];
                    let _ = db.execute("getBestSellers", &params, Duration::from_secs(10));
                    i += 1;
                }
            });
        }
    });
    (met.load(Ordering::Relaxed), missed.load(Ordering::Relaxed))
}

fn main() -> shareddb::Result<()> {
    let scale = TpcwScale::with_items(1_000);
    println!("light-query SLA = 250 ms; heavy load = concurrent BestSellers clients\n");
    println!(
        "{:<10} {:<14} {:>10} {:>10} {:>10}",
        "heavy", "system", "met", "missed", "met %"
    );
    for heavy in [0usize, 2, 4, 8] {
        let catalog = Arc::new(build_catalog(&scale)?);
        let shared = SharedDbSystem::new(Arc::clone(&catalog), EngineConfig::default())?;
        let (met, missed) = run_level(&shared, &scale, heavy);
        println!(
            "{:<10} {:<14} {:>10} {:>10} {:>9.1}%",
            heavy,
            "SharedDB",
            met,
            missed,
            100.0 * met as f64 / (met + missed).max(1) as f64
        );

        let catalog = Arc::new(build_catalog(&scale)?);
        let baseline = BaselineSystem::new(catalog, EngineProfile::Tuned, 8);
        let (met, missed) = run_level(&baseline, &scale, heavy);
        println!(
            "{:<10} {:<14} {:>10} {:>10} {:>9.1}%",
            heavy,
            "SystemX-like",
            met,
            missed,
            100.0 * met as f64 / (met + missed).max(1) as f64
        );
    }
    Ok(())
}

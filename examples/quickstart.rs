//! Quickstart: create tables, build a global plan, register prepared
//! statements, start the engine, and run many concurrent parameterised
//! queries through one shared plan.
//!
//! Run with: `cargo run --release --example quickstart`

use shareddb::common::agg::AggregateFunction;
use shareddb::common::{tuple, DataType, Expr, SortKey, Value};
use shareddb::core::plan::{ActivationTemplate, PlanBuilder, StatementSpec, UpdateTemplate};
use shareddb::core::{Engine, EngineConfig, StatementRegistry};
use shareddb::storage::{Catalog, TableDef};
use std::sync::Arc;

fn main() -> shareddb::Result<()> {
    // 1. Create the schema and load some data.
    let catalog = Arc::new(Catalog::new());
    catalog.create_table(
        TableDef::new("USERS")
            .column("USER_ID", DataType::Int)
            .column("USERNAME", DataType::Text)
            .column("COUNTRY", DataType::Text)
            .column("ACCOUNT", DataType::Int)
            .primary_key(&["USER_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ORDERS")
            .column("ORDER_ID", DataType::Int)
            .column("USER_ID", DataType::Int)
            .column("STATUS", DataType::Text)
            .primary_key(&["ORDER_ID"]),
    )?;
    catalog.bulk_load(
        "USERS",
        (0..1_000i64)
            .map(|i| {
                tuple![
                    i,
                    format!("user{i}"),
                    if i % 3 == 0 { "CH" } else { "DE" },
                    i * 7
                ]
            })
            .collect(),
    )?;
    catalog.bulk_load(
        "ORDERS",
        (0..5_000i64)
            .map(|i| tuple![i, i % 1_000, if i % 4 == 0 { "OK" } else { "PENDING" }])
            .collect(),
    )?;

    // 2. Compile the workload into ONE global plan (Figure 2 of the paper):
    //    shared scans, one shared join, one shared group-by.
    let mut builder = PlanBuilder::new(&catalog);
    let users = builder.table_scan("USERS")?;
    let orders = builder.table_scan("ORDERS")?;
    let join = builder.hash_join(users, orders, "USERS.USER_ID", "ORDERS.USER_ID")?;
    let join_sorted = builder.sort(join, vec![SortKey::asc(4)])?;
    let by_country = builder.group_by(
        users,
        vec!["USERS.COUNTRY"],
        vec![(AggregateFunction::Sum, "USERS.ACCOUNT", "TOTAL_ACCOUNT")],
    )?;
    let plan = builder.build();
    println!("Global plan:\n{}", plan.render());

    // 3. Register the prepared statements of the application.
    let mut registry = StatementRegistry::new();
    registry.register(
        StatementSpec::query("ordersOfUser", join_sorted)
            .activate(
                users,
                ActivationTemplate::Scan {
                    predicate: Expr::named("USERNAME")
                        .eq(Expr::param(0))
                        .resolve(&plan.node(users).schema)?,
                },
            )
            .activate(
                orders,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).eq(Expr::lit("OK")),
                },
            )
            .activate(join, ActivationTemplate::Participate)
            .activate(join_sorted, ActivationTemplate::Participate),
    )?;
    registry.register(
        StatementSpec::query("accountsByCountry", by_country)
            .activate(
                users,
                ActivationTemplate::Scan {
                    predicate: Expr::lit(true),
                },
            )
            .activate(by_country, ActivationTemplate::Having { predicate: None }),
    )?;
    registry.register(StatementSpec::update(
        "placeOrder",
        "ORDERS",
        UpdateTemplate::Insert {
            values: vec![Expr::param(0), Expr::param(1), Expr::lit("OK")],
        },
    ))?;

    // 4. Start the engine and fire hundreds of concurrent queries: they are
    //    batched and answered by ONE shared join, ONE shared sort and ONE
    //    shared group-by per heartbeat.
    let engine = Engine::start(catalog, plan, registry, EngineConfig::default())?;
    let handles: Vec<_> = (0..500)
        .map(|i| {
            engine
                .execute("ordersOfUser", &[Value::text(format!("user{}", i % 1_000))])
                .expect("submit query")
        })
        .collect();
    let mut total_rows = 0;
    for handle in handles {
        total_rows += handle.wait()?.rows().len();
    }
    println!("500 concurrent ordersOfUser queries returned {total_rows} rows in total");

    let outcome = engine.execute_sync("placeOrder", &[Value::Int(10_000), Value::Int(7)])?;
    println!("placeOrder affected {} row(s)", outcome.rows_affected());

    let report = engine.execute_sync("accountsByCountry", &[])?;
    for row in report.rows() {
        println!("country {} -> total account {}", row[0], row[1]);
    }

    let stats = engine.stats();
    println!(
        "engine processed {} queries / {} updates in {} batches (mean latency {:?})",
        stats.queries, stats.updates, stats.batches, stats.mean_latency
    );
    Ok(())
}

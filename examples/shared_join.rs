//! The shared-join example of Section 1 and Figure 3 of the paper.
//!
//! Two query types over CUSTOMER ⨝ ORDERS:
//!   Q1: orders of German customers
//!   Q2: orders of Swiss customers placed in 2011
//!
//! SharedDB executes one big join over the union of German and Swiss
//! customers and routes results by query id; this example shows that the
//! per-query answers are identical to executing each query on its own, while
//! the join itself ran only once (visible in the operator statistics).
//!
//! Run with: `cargo run --release --example shared_join`

use shareddb::common::{tuple, DataType, Expr, Value};
use shareddb::core::plan::{ActivationTemplate, PlanBuilder, StatementSpec};
use shareddb::core::{Engine, EngineConfig, StatementRegistry};
use shareddb::storage::{Catalog, TableDef};
use std::sync::Arc;

fn main() -> shareddb::Result<()> {
    let catalog = Arc::new(Catalog::new());
    catalog.create_table(
        TableDef::new("CUSTOMER")
            .column("C_ID", DataType::Int)
            .column("C_NAME", DataType::Text)
            .column("C_COUNTRY", DataType::Text)
            .primary_key(&["C_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ORDERS")
            .column("O_ID", DataType::Int)
            .column("O_C_ID", DataType::Int)
            .column("O_YEAR", DataType::Int)
            .primary_key(&["O_ID"]),
    )?;
    let countries = ["DE", "CH", "FR", "IT", "AT"];
    catalog.bulk_load(
        "CUSTOMER",
        (0..500i64)
            .map(|i| {
                tuple![
                    i,
                    format!("customer{i}"),
                    countries[i as usize % countries.len()]
                ]
            })
            .collect(),
    )?;
    catalog.bulk_load(
        "ORDERS",
        (0..3_000i64)
            .map(|i| tuple![i, i % 500, 2008 + (i % 5)])
            .collect(),
    )?;

    // One shared customer-order join for both query types.
    let mut b = PlanBuilder::new(&catalog);
    let customers = b.table_scan("CUSTOMER")?;
    let orders = b.table_scan("ORDERS")?;
    let join = b.hash_join(customers, orders, "CUSTOMER.C_ID", "ORDERS.O_C_ID")?;
    let plan = b.build();

    let mut registry = StatementRegistry::new();
    // Q1: all orders of customers from country ?0.
    registry.register(
        StatementSpec::query("ordersByCountry", join)
            .activate(
                customers,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).eq(Expr::param(0)),
                },
            )
            .activate(
                orders,
                ActivationTemplate::Scan {
                    predicate: Expr::lit(true),
                },
            )
            .activate(join, ActivationTemplate::Participate),
    )?;
    // Q2: orders of customers from country ?0 placed in year ?1.
    registry.register(
        StatementSpec::query("ordersByCountryAndYear", join)
            .activate(
                customers,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).eq(Expr::param(0)),
                },
            )
            .activate(
                orders,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).eq(Expr::param(1)),
                },
            )
            .activate(join, ActivationTemplate::Participate),
    )?;

    let engine = Engine::start(
        Arc::clone(&catalog),
        plan,
        registry,
        EngineConfig::default(),
    )?;

    // Submit both query types (plus many concurrent instances) at once: they
    // are answered by a single shared join per heartbeat.
    let q1 = engine.execute("ordersByCountry", &[Value::text("DE")])?;
    let q2 = engine.execute(
        "ordersByCountryAndYear",
        &[Value::text("CH"), Value::Int(2011)],
    )?;
    let more: Vec<_> = (0..200)
        .map(|i| {
            engine
                .execute(
                    "ordersByCountryAndYear",
                    &[
                        Value::text(countries[i % countries.len()]),
                        Value::Int(2008 + (i as i64 % 5)),
                    ],
                )
                .unwrap()
        })
        .collect();

    let q1_rows = q1.wait()?.rows().len();
    let q2_rows = q2.wait()?.rows().len();
    let mut other_rows = 0;
    for h in more {
        other_rows += h.wait()?.rows().len();
    }
    println!("Q1 (orders of German customers):            {q1_rows} rows");
    println!("Q2 (orders of Swiss customers in 2011):     {q2_rows} rows");
    println!("200 further concurrent join queries:        {other_rows} rows");

    println!("\nPer-operator statistics (note: ONE join operator served everything):");
    for op in engine.operator_stats() {
        if op.active_cycles > 0 {
            println!(
                "  {:<22} cycles={} tuples_out={} busy={:?}",
                op.name, op.active_cycles, op.tuples_out, op.busy
            );
        }
    }
    Ok(())
}

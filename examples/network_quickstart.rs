//! Network quickstart: start a SharedDB server from a SQL workload, connect a
//! few clients over TCP, and watch many concurrent statements being answered
//! by a handful of shared batches.
//!
//! Run with: `cargo run --example network_quickstart`

use shareddb::client::Connection;
use shareddb::common::{tuple, DataType, Value};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::sync::Arc;

fn main() {
    // 1. A catalog with one table of books.
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("BOOK")
                .column("B_ID", DataType::Int)
                .column("B_TITLE", DataType::Text)
                .column("B_PRICE", DataType::Float)
                .primary_key(&["B_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "BOOK",
            (0..1_000i64)
                .map(|i| tuple![i, format!("Book #{i}"), (i % 90) as f64 + 9.99])
                .collect(),
        )
        .unwrap();

    // 2. The workload: recurring statement types, compiled into ONE shared
    //    global plan. Ad-hoc SQL sent by clients is matched against these.
    let workload: &[(&str, &str)] = &[
        ("bookById", "SELECT * FROM BOOK WHERE B_ID = ?"),
        (
            "cheapBooks",
            "SELECT * FROM BOOK WHERE B_PRICE < ? ORDER BY B_PRICE LIMIT 5",
        ),
        ("addBook", "INSERT INTO BOOK VALUES (?, ?, ?)"),
    ];

    // 3. Start the network frontend (an ephemeral local port).
    let mut server = Server::start_sql(
        Arc::new(catalog),
        workload,
        EngineConfig::default(),
        ServerConfig {
            // Allow deep pipelines; requests beyond this are rejected with a
            // retryable "overloaded" error (admission control).
            max_inflight_per_session: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // 4. A pipelining client: 200 look-ups in flight on one connection.
    let mut conn = Connection::connect(addr).unwrap();
    let book_by_id = conn.prepare("bookById").unwrap();
    let tickets: Vec<_> = (0..200)
        .map(|i| conn.submit(&book_by_id, &[Value::Int(i)]).unwrap())
        .collect();
    let mut rows = 0;
    for ticket in tickets {
        rows += conn.wait(ticket).unwrap().rows().len();
    }
    println!("pipelined 200 look-ups -> {rows} rows");

    // 5. Ad-hoc SQL is auto-parameterised onto the compiled statement types.
    let outcome = conn.query("SELECT * FROM BOOK WHERE B_ID = 42").unwrap();
    println!("ad-hoc query -> {:?}", outcome.rows()[0][1]);
    let outcome = conn
        .query("INSERT INTO BOOK VALUES (5000, 'Network Book', 19.99)")
        .unwrap();
    println!("ad-hoc insert -> {} row(s)", outcome.rows_affected());

    // 6. More connections, all funnelled into the same shared batches.
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                let cheap = conn.prepare("cheapBooks").unwrap();
                for i in 0..50 {
                    let max = 10.0 + (t * 50 + i) as f64 / 10.0;
                    conn.execute(&cheap, &[Value::Float(max)]).unwrap();
                }
                conn.close().unwrap();
            });
        }
    });

    let stats = conn.stats().unwrap();
    println!(
        "server answered {} queries + {} updates in {} shared batches",
        stats.queries, stats.updates, stats.batches
    );
    conn.close().unwrap();
    server.shutdown();
}
